#pragma once

#include <cstdint>

#include "transport/udp.hpp"

namespace fhmip {

/// UDP sink: records per-flow delivery, end-to-end delay and sequence
/// numbers into the simulation StatsHub (enable keep_samples there for the
/// per-packet delay figures).
class UdpSink {
 public:
  UdpSink(Node& node, std::uint16_t port);

  std::uint64_t packets_received() const { return received_; }
  std::uint64_t bytes_received() const { return bytes_; }
  std::uint32_t max_seq() const { return max_seq_; }
  std::uint64_t out_of_order() const { return out_of_order_; }
  SimTime last_arrival() const { return last_arrival_; }

 private:
  void handle(PacketPtr p);

  UdpAgent udp_;
  std::uint64_t received_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint32_t max_seq_ = 0;
  std::uint64_t out_of_order_ = 0;
  SimTime last_arrival_;
};

}  // namespace fhmip
