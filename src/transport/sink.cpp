#include "transport/sink.hpp"

namespace fhmip {

UdpSink::UdpSink(Node& node, std::uint16_t port) : udp_(node, port) {
  udp_.set_receive_callback([this](PacketPtr p) { handle(std::move(p)); });
}

void UdpSink::handle(PacketPtr p) {
  ++received_;
  bytes_ += p->size_bytes;
  Simulation& sim = udp_.node().sim();
  const SimTime delay = sim.now() - p->created_at;
  if (received_ > 1 && p->seq < max_seq_) ++out_of_order_;
  if (p->seq > max_seq_) max_seq_ = p->seq;
  last_arrival_ = sim.now();
  sim.stats().record_delivery(p->flow, sim.now(), p->seq, delay,
                              p->size_bytes);
}

}  // namespace fhmip
