#pragma once

#include <cstdint>
#include <memory>

#include "sim/scheduler.hpp"
#include "transport/udp.hpp"

namespace fhmip {

/// Constant-bit-rate source over UDP — the audio workload of §4.2
/// ("160-byte UDP packets every 20 ms" = 64 kb/s).
class CbrSource {
 public:
  struct Config {
    Address dst;
    std::uint16_t dst_port = 0;
    std::uint32_t packet_bytes = 160;
    SimTime interval = SimTime::millis(20);
    /// Uniform ± jitter applied to each inter-packet gap (zero = strictly
    /// periodic). Breaks phase lock between concurrent sources.
    SimTime jitter;
    TrafficClass tclass = TrafficClass::kUnspecified;
    FlowId flow = kNoFlow;
  };

  CbrSource(Node& node, std::uint16_t src_port, Config cfg);
  ~CbrSource();

  void start(SimTime at);
  void stop(SimTime at);
  void stop_now() { running_ = false; }

  std::uint32_t packets_sent() const { return next_seq_; }
  UdpAgent& udp() { return udp_; }

  /// Rate helper: the interval that yields `kbps` with this packet size.
  static SimTime interval_for_rate(double kbps, std::uint32_t packet_bytes);

 private:
  void emit();

  UdpAgent udp_;
  Config cfg_;
  bool running_ = false;
  std::uint32_t next_seq_ = 0;
  // Pending self-scheduled events; cancelled on destruction so the timer
  // callbacks can never fire into a dead source.
  EventId start_ev_ = kInvalidEvent;
  EventId stop_ev_ = kInvalidEvent;
  EventId emit_ev_ = kInvalidEvent;
};

}  // namespace fhmip
