#pragma once

#include <cstdint>
#include <functional>

#include "net/node.hpp"
#include "net/packet.hpp"

namespace fhmip {

/// A minimal UDP endpoint bound to one port of a node. Sending stamps flow,
/// sequence and traffic class onto the packet; receiving invokes the
/// callback with the delivered packet.
class UdpAgent {
 public:
  UdpAgent(Node& node, std::uint16_t port);
  ~UdpAgent();

  UdpAgent(const UdpAgent&) = delete;
  UdpAgent& operator=(const UdpAgent&) = delete;

  void set_receive_callback(std::function<void(PacketPtr)> cb) {
    on_receive_ = std::move(cb);
  }

  /// Sends a datagram from this endpoint. `record` controls whether the
  /// packet counts toward the flow's `sent` statistic.
  void send_to(Address dst, std::uint16_t dst_port, std::uint32_t bytes,
               TrafficClass tclass = TrafficClass::kUnspecified,
               FlowId flow = kNoFlow, std::uint32_t seq = 0,
               bool record = true);

  /// Source address used on outgoing datagrams (defaults to the node's
  /// primary address at send time; mobile hosts pin it to the home/regional
  /// address).
  void set_source(Address a) { source_ = a; }

  Node& node() { return node_; }
  std::uint16_t port() const { return port_; }

 private:
  Node& node_;
  std::uint16_t port_;
  Address source_;
  std::function<void(PacketPtr)> on_receive_;
};

}  // namespace fhmip
