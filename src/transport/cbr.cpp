#include "transport/cbr.hpp"

namespace fhmip {

CbrSource::CbrSource(Node& node, std::uint16_t src_port, Config cfg)
    : udp_(node, src_port), cfg_(cfg) {}

CbrSource::~CbrSource() {
  Simulation& sim = udp_.node().sim();
  sim.cancel(start_ev_);
  sim.cancel(stop_ev_);
  sim.cancel(emit_ev_);
}

void CbrSource::start(SimTime at) {
  start_ev_ = udp_.node().sim().at(at, [this] {
    running_ = true;
    emit();
  });
}

void CbrSource::stop(SimTime at) {
  stop_ev_ = udp_.node().sim().at(at, [this] { running_ = false; });
}

void CbrSource::emit() {
  if (!running_) return;
  udp_.send_to(cfg_.dst, cfg_.dst_port, cfg_.packet_bytes, cfg_.tclass,
               cfg_.flow, next_seq_++);
  Simulation& sim = udp_.node().sim();
  SimTime gap = cfg_.interval;
  if (!cfg_.jitter.is_zero()) {
    gap += SimTime::nanos(
        sim.rng().uniform_int(-cfg_.jitter.ns(), cfg_.jitter.ns()));
    if (gap < SimTime::micros(1)) gap = SimTime::micros(1);
  }
  emit_ev_ = sim.in(gap, [this] { emit(); });
}

SimTime CbrSource::interval_for_rate(double kbps, std::uint32_t packet_bytes) {
  return SimTime::from_seconds(packet_bytes * 8.0 / (kbps * 1000.0));
}

}  // namespace fhmip
