#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace fhmip {

/// Packet-level trace events, the equivalent of ns-2's trace file. Disabled
/// (and free) unless a sink is attached.
enum class TraceKind {
  kCreate,        // packet stamped with a uid (make_packet / clone)
  kTransmit,      // serialization onto a link began
  kDeliver,       // handed to the receiving node
  kForward,       // routed through a node
  kLocalDeliver,  // consumed at its destination node
  kBufferEnter,   // parked in a handoff buffer
  kBufferExit,    // released from a handoff buffer (drain/evict/flush)
  kDiscard,       // destroyed without flow accounting (unclaimed control)
  kDrop,          // died, with a DropReason
};

const char* to_string(TraceKind kind);

struct TraceEvent {
  SimTime at;
  TraceKind kind = TraceKind::kTransmit;
  /// Name of the link or node where the event happened. Points at storage
  /// owned by that component; copy if retained past its lifetime.
  const char* where = "";
  std::uint64_t uid = 0;
  FlowId flow = kNoFlow;
  std::uint32_t seq = 0;
  std::uint32_t bytes = 0;
  const char* msg = "";  // message-type name ("data", "FBU", ...)
  /// Set for kDrop (and optionally kBufferExit when the exit is itself a
  /// drop); empty for every other kind, so sinks cannot misread a stale
  /// reason on non-drop events.
  std::optional<DropReason> reason;
};

/// ns-2-flavoured one-line rendering:
///   "d 11.312000 par data uid 42 flow 1 seq 917 160B (unattached)".
/// Robust to out-of-range enum values (renders "?").
std::string format_trace_line(const TraceEvent& e);

/// Trace hub owned by the Simulation. `emit` is called from the packet
/// pipeline; with no sink attached it is a branch and a return. Several
/// sinks can be attached at once (file writer + ledger + test collector);
/// each emitted event fans out to all of them in attachment order.
class PacketTrace {
 public:
  using Sink = std::function<void(const TraceEvent&)>;
  using SinkId = std::uint32_t;
  static constexpr SinkId kNoSink = 0;

  /// Attaches a sink and returns its id for later removal.
  SinkId add_sink(Sink sink) {
    sinks_.emplace_back(next_id_, std::move(sink));
    return next_id_++;
  }

  /// Detaches one sink; unknown ids are ignored.
  void remove_sink(SinkId id) {
    for (std::size_t i = 0; i < sinks_.size(); ++i) {
      if (sinks_[i].first == id) {
        sinks_.erase(sinks_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

  /// Legacy single-sink interface: replaces the sink installed by the last
  /// set_sink() call, leaving add_sink() attachments (ledgers, file
  /// writers) untouched.
  void set_sink(Sink sink) {
    if (legacy_id_ != kNoSink) remove_sink(legacy_id_);
    legacy_id_ = add_sink(std::move(sink));
  }
  /// Removes the set_sink() sink (legacy name kept for existing callers).
  void clear() {
    if (legacy_id_ != kNoSink) remove_sink(legacy_id_);
    legacy_id_ = kNoSink;
  }

  bool enabled() const { return !sinks_.empty(); }
  std::size_t sink_count() const { return sinks_.size(); }

  void emit(const TraceEvent& e) {
    // Index loop: a sink may add/remove sinks while handling an event.
    for (std::size_t i = 0; i < sinks_.size(); ++i) sinks_[i].second(e);
  }

 private:
  std::vector<std::pair<SinkId, Sink>> sinks_;
  SinkId next_id_ = 1;
  SinkId legacy_id_ = kNoSink;
};

}  // namespace fhmip
