#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace fhmip {

/// Packet-level trace events, the equivalent of ns-2's trace file. Disabled
/// (and free) unless a sink is attached.
enum class TraceKind {
  kTransmit,      // serialization onto a link began
  kDeliver,       // handed to the receiving node
  kForward,       // routed through a node
  kLocalDeliver,  // consumed at its destination node
  kDrop,          // died, with a DropReason
};

const char* to_string(TraceKind kind);

struct TraceEvent {
  SimTime at;
  TraceKind kind = TraceKind::kTransmit;
  /// Name of the link or node where the event happened. Points at storage
  /// owned by that component; copy if retained past its lifetime.
  const char* where = "";
  std::uint64_t uid = 0;
  FlowId flow = kNoFlow;
  std::uint32_t seq = 0;
  std::uint32_t bytes = 0;
  const char* msg = "";  // message-type name ("data", "FBU", ...)
  DropReason reason = DropReason::kQueueOverflow;  // valid for kDrop only
};

/// ns-2-flavoured one-line rendering:
///   "d 11.312000 par data uid 42 flow 1 seq 917 160B (unattached)".
std::string format_trace_line(const TraceEvent& e);

/// Trace hub owned by the Simulation. `emit` is called from the packet
/// pipeline; with no sink attached it is a branch and a return.
class PacketTrace {
 public:
  using Sink = std::function<void(const TraceEvent&)>;

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void clear() { sink_ = nullptr; }
  bool enabled() const { return static_cast<bool>(sink_); }

  void emit(const TraceEvent& e) {
    if (sink_) sink_(e);
  }

 private:
  Sink sink_;
};

}  // namespace fhmip
