#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

/// Runtime invariant audits.
///
/// `FHMIP_AUDIT(component, cond)` checks an internal invariant of the
/// simulator — the accounting identities that the paper's results depend on
/// (pool/lease balance, queue byte counts, scheduler clock monotonicity,
/// handover message ordering). Violations are routed through AuditHub to the
/// logging layer and, by default, abort the process so sanitizer/CI runs
/// fail loudly instead of producing silently-corrupt figures.
///
/// The checks are gated by the compile definition `FHMIP_AUDIT_LEVEL`
/// (a CMake cache variable of the same name, applied to every target):
///   0 — audits compile to nothing; condition and message expressions are
///       not evaluated (zero cost, for benchmarking builds),
///   1 — O(1) checks at mutation sites (the default for dev/test builds),
///   2 — adds O(n) sweeps (full lease-sum and byte-recount audits).
#ifndef FHMIP_AUDIT_LEVEL
#define FHMIP_AUDIT_LEVEL 1
#endif

namespace fhmip {

/// A single failed audit. `expr`/`file` point at string literals.
struct AuditViolation {
  const char* component = "";
  const char* expr = "";
  const char* file = "";
  int line = 0;
  std::string detail;
};

/// Renders "audit failed [buffer] leased <= pool at buffer_manager.cpp:21
/// (leased=7 pool=4)".
std::string format_violation(const AuditViolation& v);

/// Process-wide collector for audit failures. Components report through the
/// free function `audit_fail`; by default a violation is written to stderr
/// and the process aborts. Tests install a sink (which suppresses the abort
/// unless re-enabled) to assert that deliberate corruption is caught.
///
/// Threading: each Simulation is single-threaded, but parallel sweeps
/// (sweep/sweep_runner.hpp) run many simulations at once in one process.
/// Passing audits never touch the hub; the failure counter is atomic so
/// simultaneous violations from different runs cannot race. Sink
/// installation remains main-thread-only (it is a test affordance).
class AuditHub {
 public:
  using Sink = std::function<void(const AuditViolation&)>;

  static AuditHub& instance();

  void report(const AuditViolation& v);

  /// Replaces the default stderr+abort behaviour. Passing nullptr restores
  /// the default.
  void set_sink(Sink sink);
  /// Forces abort even with a sink installed (CI hardening).
  void set_abort_on_violation(bool abort_on_violation);

  std::uint64_t violations() const {
    return violations_.load(std::memory_order_relaxed);
  }
  void reset_violations() { violations_.store(0, std::memory_order_relaxed); }

 private:
  friend class ScopedAuditSink;

  Sink sink_;
  bool abort_on_violation_ = true;
  std::atomic<std::uint64_t> violations_{0};
};

/// RAII sink installer for tests: captures violations for the duration of a
/// scope and restores the previous abort-on-violation behaviour on exit.
class ScopedAuditSink {
 public:
  explicit ScopedAuditSink(AuditHub::Sink sink);
  ~ScopedAuditSink();
  ScopedAuditSink(const ScopedAuditSink&) = delete;
  ScopedAuditSink& operator=(const ScopedAuditSink&) = delete;
};

[[gnu::cold]] void audit_fail(const char* component, const char* expr,
                              const char* file, int line,
                              std::string detail = {});

}  // namespace fhmip

#if FHMIP_AUDIT_LEVEL >= 1
/// Checks `cond`; on failure reports through AuditHub. `component` is a
/// short subsystem tag ("sched", "buffer", "net", "fastho").
#define FHMIP_AUDIT(component, cond)                                   \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::fhmip::audit_fail(component, #cond, __FILE__, __LINE__);       \
    }                                                                  \
  } while (0)
/// Like FHMIP_AUDIT with a detail string; `detail_expr` (any expression
/// convertible to std::string) is evaluated only on failure.
#define FHMIP_AUDIT_MSG(component, cond, detail_expr)                  \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::fhmip::audit_fail(component, #cond, __FILE__, __LINE__,        \
                          (detail_expr));                              \
    }                                                                  \
  } while (0)
#else
#define FHMIP_AUDIT(component, cond) ((void)0)
#define FHMIP_AUDIT_MSG(component, cond, detail_expr) ((void)0)
#endif

#if FHMIP_AUDIT_LEVEL >= 2
/// O(n) sweep audits (full recounts); compiled in only at level 2.
#define FHMIP_AUDIT2(component, cond) FHMIP_AUDIT(component, cond)
#define FHMIP_AUDIT2_MSG(component, cond, detail_expr) \
  FHMIP_AUDIT_MSG(component, cond, detail_expr)
#else
#define FHMIP_AUDIT2(component, cond) ((void)0)
#define FHMIP_AUDIT2_MSG(component, cond, detail_expr) ((void)0)
#endif
