#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace fhmip {

using FlowId = std::int32_t;
inline constexpr FlowId kNoFlow = -1;

/// Why a packet died. Used for per-flow accounting and conservation checks.
enum class DropReason {
  kQueueOverflow,    // tail drop in a link queue
  kWirelessDown,     // in flight on a wireless link when the MH detached
  kUnattached,       // arrived at an AR with no attached MH and no buffer
  kNoRoute,          // routing failure
  kTtlExpired,       // forwarding loop guard
  kPolicyDrop,       // dropped by the buffer policy (e.g. Case 4 best effort)
  kBufferTailDrop,   // handoff buffer full, new packet rejected
  kBufferFrontDrop,  // handoff buffer full, oldest real-time packet evicted
  kBufferExpired,    // buffer lifetime elapsed before release
  kRandomLoss,       // injected per-packet loss (wireless corruption model)
  kFaultInjected,    // killed by a scripted fault (src/fault)
  kLeaseReclaimed,   // buffered packets reclaimed by the allocation-lease
                     // reaper (orphaned grant past its deadline)
};

const char* to_string(DropReason reason);
inline constexpr int kNumDropReasons = 12;

/// A delivered packet's end-to-end record; benches turn these into the
/// per-sequence delay plots (Figures 4.7-4.10).
struct DeliverySample {
  SimTime at;      // delivery time
  std::uint32_t seq;
  SimTime delay;   // at - packet creation time
};

struct FlowCounters {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t drops_by_reason[kNumDropReasons] = {};

  std::uint64_t in_flight() const { return sent - delivered - dropped; }
};

/// Central packet accounting. Every packet source reports `sent`; every sink
/// reports `delivered`; every dropping entity reports the drop with a reason.
/// The invariant sent == delivered + dropped + in_flight is what the
/// property tests check.
class StatsHub {
 public:
  void record_sent(FlowId flow);
  void record_delivery(FlowId flow, SimTime at, std::uint32_t seq,
                       SimTime delay, std::uint32_t bytes);
  void record_drop(FlowId flow, DropReason reason);

  /// When true, per-packet delivery samples are retained (delay figures).
  void set_keep_samples(bool keep) { keep_samples_ = keep; }

  const FlowCounters& flow(FlowId id) const;
  FlowCounters totals() const;
  const std::vector<DeliverySample>& samples(FlowId id) const;
  std::vector<FlowId> flows() const;

  std::uint64_t total_drops(DropReason reason) const;

  void reset();

 private:
  // Flat per-flow storage indexed by flow - kNoFlow (slot 0 is kNoFlow).
  // Flow ids are dense and small, so the per-packet record_* calls are a
  // bounds check plus an index instead of a std::map node walk (and a node
  // allocation on first sight). Slots grow only when a new flow id first
  // appears, never per packet. Iterating slots in index order reproduces
  // the old map order (-1, 0, 1, ...) byte for byte.
  static std::size_t index_of(FlowId flow);
  FlowCounters& slot(FlowId flow);
  std::vector<FlowCounters> flows_;
  std::vector<std::vector<DeliverySample>> samples_;
  bool keep_samples_ = false;
  static const FlowCounters kEmpty;
  static const std::vector<DeliverySample> kNoSamples;
};

}  // namespace fhmip
