#include "sim/random.hpp"

#include <cmath>

namespace fhmip {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());
  return lo + static_cast<std::int64_t>(next_u64() % range);
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

bool Rng::chance(double p) { return uniform() < p; }

}  // namespace fhmip
