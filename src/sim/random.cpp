#include "sim/random.hpp"

#include <cmath>

#include "sim/check.hpp"

namespace fhmip {
namespace {

// GCC/Clang 128-bit arithmetic for the Lemire sampler; the __extension__
// spelling keeps -Wpedantic quiet about the non-ISO type.
__extension__ typedef unsigned __int128 u128;

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  FHMIP_AUDIT_MSG("rng", lo <= hi,
                  "uniform_int(" + std::to_string(lo) + ", " +
                      std::to_string(hi) + ") with hi < lo");
  const auto range =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full span
  // Lemire's bounded multiply-shift with rejection: take the high 64 bits
  // of draw * range; reject the low-product values that would make some
  // outputs one draw more likely than others (plain `% range` has exactly
  // that bias, ~2^-40 per draw at range ~2^24 but structural).
  u128 m = static_cast<u128>(next_u64()) * range;
  auto low = static_cast<std::uint64_t>(m);
  if (low < range) {
    const std::uint64_t threshold = (0 - range) % range;
    while (low < threshold) {
      m = static_cast<u128>(next_u64()) * range;
      low = static_cast<std::uint64_t>(m);
    }
  }
  const auto offset = static_cast<std::uint64_t>(m >> 64);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + offset);
}

double Rng::exponential(double mean) {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

bool Rng::chance(double p) { return uniform() < p; }

}  // namespace fhmip
