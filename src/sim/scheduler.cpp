#include "sim/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "sim/check.hpp"

namespace fhmip {

namespace {
constexpr SimTime kNoLimit = SimTime::nanos(
    std::numeric_limits<std::int64_t>::max());
}  // namespace

std::uint32_t Scheduler::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

EventId Scheduler::schedule_at(SimTime t, Action fn) {
  if (t < now_) t = now_;
  const std::uint32_t idx = acquire_slot();
  Slot& s = slots_[idx];
  s.at = t;
  s.seq = next_seq_++;
  s.fn = std::move(fn);
  s.armed = true;
  s.cancelled = false;
  heap_.push_back(idx);
  sift_up(heap_.size() - 1);
  ++live_;
  return encode(idx, s.gen);
}

void Scheduler::cancel(EventId id) {
  if (id == kInvalidEvent) return;
  const std::uint32_t idx = decode_slot(id);
  if (idx >= slots_.size()) return;
  Slot& s = slots_[idx];
  if (!s.armed || s.gen != decode_gen(id) || s.cancelled) return;
  s.cancelled = true;
  s.fn = nullptr;  // release captured state eagerly
  FHMIP_AUDIT("sched", live_ > 0);
  --live_;
}

bool Scheduler::pending(EventId id) const {
  if (id == kInvalidEvent) return false;
  const std::uint32_t idx = decode_slot(id);
  if (idx >= slots_.size()) return false;
  const Slot& s = slots_[idx];
  return s.armed && s.gen == decode_gen(id) && !s.cancelled;
}

void Scheduler::sift_up(std::size_t pos) {
  const std::uint32_t idx = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!earlier(idx, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = idx;
}

void Scheduler::sift_down(std::size_t pos) {
  const std::uint32_t idx = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first_child = pos * 4 + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + 4, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], idx)) break;
    heap_[pos] = heap_[best];
    pos = best;
  }
  heap_[pos] = idx;
}

void Scheduler::release_root() {
  Slot& s = slots_[heap_[0]];
  ++s.gen;  // stale handles to this occupancy stop matching
  s.armed = false;
  s.cancelled = false;
  s.fn = nullptr;
  free_.push_back(heap_[0]);
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

bool Scheduler::pop_runnable(SimTime limit, SimTime& at_out, Action& fn_out) {
  while (!heap_.empty()) {
    Slot& top = slots_[heap_[0]];
    if (top.cancelled) {
      release_root();
      continue;
    }
    if (top.at > limit) return false;
    at_out = top.at;
    fn_out = std::move(top.fn);
    FHMIP_AUDIT("sched", live_ > 0);
    --live_;
    release_root();
    return true;
  }
  return false;
}

bool Scheduler::step() {
  SimTime at;
  Action fn;
  if (!pop_runnable(kNoLimit, at, fn)) return false;
  // The clock only moves forward: schedule_at clamps past times to now(),
  // so a popped event timestamped before now_ means heap-order corruption.
  FHMIP_AUDIT_MSG("sched", at >= now_,
                  "event at " + at.to_string() + " before clock " +
                      now_.to_string());
  now_ = at;
  ++executed_;
  fn();
  return true;
}

std::size_t Scheduler::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::size_t Scheduler::run_until(SimTime t) {
  std::size_t n = 0;
  SimTime at;
  Action fn;
  while (pop_runnable(t, at, fn)) {
    FHMIP_AUDIT_MSG("sched", at >= now_,
                    "event at " + at.to_string() + " before clock " +
                        now_.to_string());
    now_ = at;
    ++executed_;
    ++n;
    fn();
  }
  if (now_ < t) now_ = t;
  return n;
}

void Scheduler::audit_invariants() const {
  FHMIP_AUDIT_MSG("sched", live_ <= heap_.size(),
                  "live=" + std::to_string(live_) +
                      " heap=" + std::to_string(heap_.size()));
  FHMIP_AUDIT_MSG("sched", heap_.size() + free_.size() == slots_.size(),
                  "heap=" + std::to_string(heap_.size()) +
                      " free=" + std::to_string(free_.size()) +
                      " slots=" + std::to_string(slots_.size()));
  // Level-2 sweeps: recount the live slots and verify 4-ary heap order.
#if FHMIP_AUDIT_LEVEL >= 2
  std::size_t armed = 0, live = 0;
  for (const Slot& s : slots_) {
    if (s.armed) {
      ++armed;
      if (!s.cancelled) ++live;
    }
  }
  FHMIP_AUDIT2_MSG("sched", armed == heap_.size(),
                   "armed=" + std::to_string(armed) +
                       " heap=" + std::to_string(heap_.size()));
  FHMIP_AUDIT2_MSG("sched", live == live_,
                   "recount=" + std::to_string(live) +
                       " live=" + std::to_string(live_));
  for (std::size_t pos = 1; pos < heap_.size(); ++pos) {
    const std::size_t parent = (pos - 1) / 4;
    FHMIP_AUDIT2_MSG("sched", !earlier(heap_[pos], heap_[parent]),
                     "heap order violated at pos " + std::to_string(pos));
  }
#endif
}

}  // namespace fhmip
