#include "sim/scheduler.hpp"

#include <utility>

#include "sim/check.hpp"

namespace fhmip {

EventId Scheduler::schedule_at(SimTime t, Action fn) {
  if (t < now_) t = now_;
  const EventId id = next_id_++;
  FHMIP_AUDIT("sched", id != kInvalidEvent);  // 64-bit id space exhausted
  heap_.push(Entry{t, id, std::move(fn)});
  live_.insert(id);
  return id;
}

void Scheduler::cancel(EventId id) {
  if (id == kInvalidEvent) return;
  if (live_.count(id)) cancelled_.insert(id);
  // cancelled_ must stay a subset of the heap contents, or queue_size()
  // underflows (it is heap size minus cancelled count).
  FHMIP_AUDIT_MSG("sched", cancelled_.size() <= heap_.size(),
                  "cancelled=" + std::to_string(cancelled_.size()) +
                      " heap=" + std::to_string(heap_.size()));
}

bool Scheduler::pending(EventId id) const {
  return id != kInvalidEvent && live_.count(id) && !cancelled_.count(id);
}

bool Scheduler::pop_next(Entry& out) {
  while (!heap_.empty()) {
    // priority_queue::top() is const; the Entry must be moved out, so we
    // const_cast the action (safe: the element is popped immediately after).
    Entry& top = const_cast<Entry&>(heap_.top());
    Entry e{top.at, top.id, std::move(top.fn)};
    heap_.pop();
    live_.erase(e.id);
    if (cancelled_.erase(e.id)) continue;
    out = std::move(e);
    return true;
  }
  return false;
}

bool Scheduler::step() {
  Entry e;
  if (!pop_next(e)) return false;
  // The clock only moves forward: schedule_at clamps past times to now(),
  // so a popped event timestamped before now_ means heap-order corruption.
  FHMIP_AUDIT_MSG("sched", e.at >= now_,
                  "event at " + e.at.to_string() + " before clock " +
                      now_.to_string());
  now_ = e.at;
  ++executed_;
  e.fn();
  return true;
}

std::size_t Scheduler::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::size_t Scheduler::run_until(SimTime t) {
  std::size_t n = 0;
  Entry e;
  while (!heap_.empty()) {
    // Peek without popping: skip over cancelled entries first.
    while (!heap_.empty() && cancelled_.count(heap_.top().id)) {
      cancelled_.erase(heap_.top().id);
      live_.erase(heap_.top().id);
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().at > t) break;
    if (!pop_next(e)) break;
    FHMIP_AUDIT_MSG("sched", e.at >= now_,
                    "event at " + e.at.to_string() + " before clock " +
                        now_.to_string());
    now_ = e.at;
    ++executed_;
    ++n;
    e.fn();
  }
  if (now_ < t) now_ = t;
  return n;
}

void Scheduler::audit_invariants() const {
  FHMIP_AUDIT_MSG("sched", cancelled_.size() <= heap_.size(),
                  "cancelled=" + std::to_string(cancelled_.size()) +
                      " heap=" + std::to_string(heap_.size()));
  FHMIP_AUDIT_MSG("sched", live_.size() == heap_.size(),
                  "live=" + std::to_string(live_.size()) +
                      " heap=" + std::to_string(heap_.size()));
  // Level-2 sweep: every cancelled id must still be tracked as live (it is
  // removed from both sets together when it reaches the heap front).
#if FHMIP_AUDIT_LEVEL >= 2
  for (const EventId id : cancelled_) {
    FHMIP_AUDIT2_MSG("sched", live_.count(id) == 1,
                     "cancelled id " + std::to_string(id) + " not live");
  }
#endif
}

}  // namespace fhmip
