#include "sim/scheduler.hpp"

#include <utility>

namespace fhmip {

EventId Scheduler::schedule_at(SimTime t, Action fn) {
  if (t < now_) t = now_;
  const EventId id = next_id_++;
  heap_.push(Entry{t, id, std::move(fn)});
  live_.insert(id);
  return id;
}

void Scheduler::cancel(EventId id) {
  if (id == kInvalidEvent) return;
  if (live_.count(id)) cancelled_.insert(id);
}

bool Scheduler::pending(EventId id) const {
  return id != kInvalidEvent && live_.count(id) && !cancelled_.count(id);
}

bool Scheduler::pop_next(Entry& out) {
  while (!heap_.empty()) {
    // priority_queue::top() is const; the Entry must be moved out, so we
    // const_cast the action (safe: the element is popped immediately after).
    Entry& top = const_cast<Entry&>(heap_.top());
    Entry e{top.at, top.id, std::move(top.fn)};
    heap_.pop();
    live_.erase(e.id);
    if (cancelled_.erase(e.id)) continue;
    out = std::move(e);
    return true;
  }
  return false;
}

bool Scheduler::step() {
  Entry e;
  if (!pop_next(e)) return false;
  now_ = e.at;
  ++executed_;
  e.fn();
  return true;
}

std::size_t Scheduler::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::size_t Scheduler::run_until(SimTime t) {
  std::size_t n = 0;
  Entry e;
  while (!heap_.empty()) {
    // Peek without popping: skip over cancelled entries first.
    while (!heap_.empty() && cancelled_.count(heap_.top().id)) {
      cancelled_.erase(heap_.top().id);
      live_.erase(heap_.top().id);
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().at > t) break;
    if (!pop_next(e)) break;
    now_ = e.at;
    ++executed_;
    ++n;
    e.fn();
  }
  if (now_ < t) now_ = t;
  return n;
}

}  // namespace fhmip
