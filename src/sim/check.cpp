#include "sim/check.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace fhmip {

std::string format_violation(const AuditViolation& v) {
  std::string s = "audit failed [";
  s += v.component;
  s += "] ";
  s += v.expr;
  s += " at ";
  s += v.file;
  s += ":";
  s += std::to_string(v.line);
  if (!v.detail.empty()) {
    s += " (";
    s += v.detail;
    s += ")";
  }
  return s;
}

AuditHub& AuditHub::instance() {
  static AuditHub hub;
  return hub;
}

void AuditHub::set_sink(Sink sink) { sink_ = std::move(sink); }

void AuditHub::set_abort_on_violation(bool abort_on_violation) {
  abort_on_violation_ = abort_on_violation;
}

void AuditHub::report(const AuditViolation& v) {
  ++violations_;
  if (sink_) {
    sink_(v);
  } else {
    std::fprintf(stderr, "fhmip: %s\n", format_violation(v).c_str());
  }
  if (abort_on_violation_) std::abort();
}

namespace {
// Saved state for the (non-reentrant, single-threaded) scoped sink. The
// simulator itself is single-threaded by design; audits inherit that.
AuditHub::Sink g_saved_sink;
bool g_saved_abort = true;
bool g_scope_active = false;
}  // namespace

ScopedAuditSink::ScopedAuditSink(AuditHub::Sink sink) {
  AuditHub& hub = AuditHub::instance();
  g_saved_abort = std::exchange(hub.abort_on_violation_, false);
  g_saved_sink = std::exchange(hub.sink_, std::move(sink));
  g_scope_active = true;
}

ScopedAuditSink::~ScopedAuditSink() {
  AuditHub& hub = AuditHub::instance();
  if (!g_scope_active) return;
  hub.sink_ = std::move(g_saved_sink);
  hub.abort_on_violation_ = g_saved_abort;
  g_scope_active = false;
}

void audit_fail(const char* component, const char* expr, const char* file,
                int line, std::string detail) {
  AuditViolation v;
  v.component = component;
  v.expr = expr;
  v.file = file;
  v.line = line;
  v.detail = std::move(detail);
  AuditHub::instance().report(v);
}

}  // namespace fhmip
