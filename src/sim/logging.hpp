#pragma once

#include <functional>
#include <string>

#include "sim/time.hpp"

namespace fhmip {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* to_string(LogLevel level);

/// Minimal leveled logger. Disabled (kOff → stderr suppressed) by default in
/// tests and benches; scenario debugging flips the level. A sink hook lets
/// tests capture output.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, SimTime, const std::string&)>;

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  bool enabled(LogLevel level) const { return level >= level_; }
  void log(LogLevel level, SimTime at, const std::string& msg);

 private:
  LogLevel level_ = LogLevel::kOff;
  Sink sink_;
};

}  // namespace fhmip
