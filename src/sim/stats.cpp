#include "sim/stats.hpp"

namespace fhmip {

const FlowCounters StatsHub::kEmpty{};
const std::vector<DeliverySample> StatsHub::kNoSamples{};

const char* to_string(DropReason reason) {
  switch (reason) {
    case DropReason::kQueueOverflow:
      return "queue-overflow";
    case DropReason::kWirelessDown:
      return "wireless-down";
    case DropReason::kUnattached:
      return "unattached";
    case DropReason::kNoRoute:
      return "no-route";
    case DropReason::kTtlExpired:
      return "ttl-expired";
    case DropReason::kPolicyDrop:
      return "policy-drop";
    case DropReason::kBufferTailDrop:
      return "buffer-tail-drop";
    case DropReason::kBufferFrontDrop:
      return "buffer-front-drop";
    case DropReason::kBufferExpired:
      return "buffer-expired";
    case DropReason::kRandomLoss:
      return "random-loss";
    case DropReason::kFaultInjected:
      return "fault-injected";
  }
  return "?";
}

void StatsHub::record_sent(FlowId flow) { ++flows_[flow].sent; }

void StatsHub::record_delivery(FlowId flow, SimTime at, std::uint32_t seq,
                               SimTime delay, std::uint32_t bytes) {
  auto& f = flows_[flow];
  ++f.delivered;
  f.bytes_delivered += bytes;
  if (keep_samples_) samples_[flow].push_back({at, seq, delay});
}

void StatsHub::record_drop(FlowId flow, DropReason reason) {
  auto& f = flows_[flow];
  ++f.dropped;
  ++f.drops_by_reason[static_cast<int>(reason)];
}

const FlowCounters& StatsHub::flow(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? kEmpty : it->second;
}

FlowCounters StatsHub::totals() const {
  FlowCounters t;
  for (const auto& [id, f] : flows_) {
    t.sent += f.sent;
    t.delivered += f.delivered;
    t.dropped += f.dropped;
    t.bytes_delivered += f.bytes_delivered;
    for (int i = 0; i < kNumDropReasons; ++i)
      t.drops_by_reason[i] += f.drops_by_reason[i];
  }
  return t;
}

const std::vector<DeliverySample>& StatsHub::samples(FlowId id) const {
  auto it = samples_.find(id);
  return it == samples_.end() ? kNoSamples : it->second;
}

std::vector<FlowId> StatsHub::flows() const {
  std::vector<FlowId> out;
  out.reserve(flows_.size());
  for (const auto& [id, f] : flows_) out.push_back(id);
  return out;
}

std::uint64_t StatsHub::total_drops(DropReason reason) const {
  std::uint64_t n = 0;
  for (const auto& [id, f] : flows_)
    n += f.drops_by_reason[static_cast<int>(reason)];
  return n;
}

void StatsHub::reset() {
  flows_.clear();
  samples_.clear();
}

}  // namespace fhmip
