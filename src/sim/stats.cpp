#include "sim/stats.hpp"

namespace fhmip {

const FlowCounters StatsHub::kEmpty{};
const std::vector<DeliverySample> StatsHub::kNoSamples{};

const char* to_string(DropReason reason) {
  switch (reason) {
    case DropReason::kQueueOverflow:
      return "queue-overflow";
    case DropReason::kWirelessDown:
      return "wireless-down";
    case DropReason::kUnattached:
      return "unattached";
    case DropReason::kNoRoute:
      return "no-route";
    case DropReason::kTtlExpired:
      return "ttl-expired";
    case DropReason::kPolicyDrop:
      return "policy-drop";
    case DropReason::kBufferTailDrop:
      return "buffer-tail-drop";
    case DropReason::kBufferFrontDrop:
      return "buffer-front-drop";
    case DropReason::kBufferExpired:
      return "buffer-expired";
    case DropReason::kRandomLoss:
      return "random-loss";
    case DropReason::kFaultInjected:
      return "fault-injected";
    case DropReason::kLeaseReclaimed:
      return "lease-reclaimed";
  }
  return "?";
}

std::size_t StatsHub::index_of(FlowId flow) {
  return static_cast<std::size_t>(flow - kNoFlow);
}

FlowCounters& StatsHub::slot(FlowId flow) {
  const std::size_t i = index_of(flow);
  if (i >= flows_.size())
    flows_.resize(i + 1);  // NOLINT-FHMIP(PERF-01) first sight of a new flow id only, never per packet
  return flows_[i];
}

void StatsHub::record_sent(FlowId flow) { ++slot(flow).sent; }

void StatsHub::record_delivery(FlowId flow, SimTime at, std::uint32_t seq,
                               SimTime delay, std::uint32_t bytes) {
  auto& f = slot(flow);
  ++f.delivered;
  f.bytes_delivered += bytes;
  if (keep_samples_) {
    const std::size_t i = index_of(flow);
    if (i >= samples_.size()) samples_.resize(i + 1);
    samples_[i].push_back({at, seq, delay});
  }
}

void StatsHub::record_drop(FlowId flow, DropReason reason) {
  auto& f = slot(flow);
  ++f.dropped;
  ++f.drops_by_reason[static_cast<int>(reason)];
}

const FlowCounters& StatsHub::flow(FlowId id) const {
  const std::size_t i = index_of(id);
  return i < flows_.size() ? flows_[i] : kEmpty;
}

FlowCounters StatsHub::totals() const {
  FlowCounters t;
  for (const auto& f : flows_) {
    t.sent += f.sent;
    t.delivered += f.delivered;
    t.dropped += f.dropped;
    t.bytes_delivered += f.bytes_delivered;
    for (int i = 0; i < kNumDropReasons; ++i)
      t.drops_by_reason[i] += f.drops_by_reason[i];
  }
  return t;
}

const std::vector<DeliverySample>& StatsHub::samples(FlowId id) const {
  const std::size_t i = index_of(id);
  return i < samples_.size() ? samples_[i] : kNoSamples;
}

std::vector<FlowId> StatsHub::flows() const {
  std::vector<FlowId> out;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const auto& f = flows_[i];
    if (f.sent != 0 || f.delivered != 0 || f.dropped != 0)
      out.push_back(static_cast<FlowId>(i) + kNoFlow);
  }
  return out;
}

std::uint64_t StatsHub::total_drops(DropReason reason) const {
  std::uint64_t n = 0;
  for (const auto& f : flows_)
    n += f.drops_by_reason[static_cast<int>(reason)];
  return n;
}

void StatsHub::reset() {
  flows_.clear();
  samples_.clear();
}

}  // namespace fhmip
