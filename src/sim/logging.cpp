#include "sim/logging.hpp"

#include <cstdio>

namespace fhmip {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void Logger::log(LogLevel level, SimTime at, const std::string& msg) {
  if (!enabled(level)) return;
  if (sink_) {
    sink_(level, at, msg);
    return;
  }
  std::fprintf(stderr, "[%s %s] %s\n", to_string(level),
               at.to_string().c_str(), msg.c_str());
}

}  // namespace fhmip
