#include "sim/simulation.hpp"

namespace fhmip {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {
  timeline_.set_registry(&metrics_);
}

}  // namespace fhmip
