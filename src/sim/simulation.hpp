#pragma once

#include <cstdint>
#include <string>

#include "net/packet_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "sim/logging.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace fhmip {

/// The per-run simulation context: event loop, RNG, stats, logger. Every
/// component takes a `Simulation&` and must not outlive it. Two runs with the
/// same seed and construction order produce identical results.
class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1);

  Scheduler& scheduler() { return scheduler_; }
  const Scheduler& scheduler() const { return scheduler_; }
  PacketPool& packet_pool() { return packet_pool_; }
  const PacketPool& packet_pool() const { return packet_pool_; }
  Rng& rng() { return rng_; }
  StatsHub& stats() { return stats_; }
  const StatsHub& stats() const { return stats_; }
  Logger& logger() { return logger_; }
  PacketTrace& trace() { return trace_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::HandoverTimeline& timeline() { return timeline_; }
  const obs::HandoverTimeline& timeline() const { return timeline_; }

  SimTime now() const { return scheduler_.now(); }
  EventId at(SimTime t, Scheduler::Action fn) {
    return scheduler_.schedule_at(t, std::move(fn));
  }
  EventId in(SimTime delay, Scheduler::Action fn) {
    return scheduler_.schedule_in(delay, std::move(fn));
  }
  void cancel(EventId id) { scheduler_.cancel(id); }

  void run() { scheduler_.run(); }
  void run_until(SimTime t) { scheduler_.run_until(t); }

  /// Monotonic id source for packets, nodes, etc.
  std::uint64_t next_uid() { return next_uid_++; }

  void log(LogLevel level, const std::string& msg) {
    logger_.log(level, now(), msg);
  }

 private:
  // Declared first: the pool must outlive every other member — pending
  // scheduler actions and topology objects own pooled packets, and their
  // destructors return slots to the pool.
  PacketPool packet_pool_;
  Scheduler scheduler_;
  Rng rng_;
  StatsHub stats_;
  Logger logger_;
  PacketTrace trace_;
  obs::MetricsRegistry metrics_;
  obs::HandoverTimeline timeline_;
  std::uint64_t next_uid_ = 1;
};

}  // namespace fhmip
