#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace fhmip {

SimTime SimTime::from_seconds(double s) {
  return SimTime{static_cast<std::int64_t>(std::llround(s * 1e9))};
}

SimTime SimTime::from_millis(double ms) {
  return SimTime{static_cast<std::int64_t>(std::llround(ms * 1e6))};
}

std::string SimTime::to_string() const {
  char buf[48];
  if (ns_ % 1'000'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%llds",
                  static_cast<long long>(ns_ / 1'000'000'000));
  } else if (ns_ % 1'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms",
                  static_cast<long long>(ns_ / 1'000'000));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6fs", sec());
  }
  return buf;
}

}  // namespace fhmip
