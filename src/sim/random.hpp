#pragma once

#include <cstdint>

namespace fhmip {

/// Deterministic xoshiro256** PRNG seeded via splitmix64. Self-contained so
/// results are identical across standard libraries and platforms (std::
/// distributions are not portable across implementations).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive, bias-free (Lemire bounded
  /// rejection). Requires lo <= hi (FHMIP_AUDIT enforced).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Exponential with the given mean (> 0).
  double exponential(double mean);
  /// Bernoulli trial.
  bool chance(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace fhmip
