#include "sim/trace.hpp"

#include <cstdio>

namespace fhmip {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kTransmit:
      return "+";
    case TraceKind::kDeliver:
      return "r";
    case TraceKind::kForward:
      return "f";
    case TraceKind::kLocalDeliver:
      return "^";
    case TraceKind::kDrop:
      return "d";
  }
  return "?";
}

std::string format_trace_line(const TraceEvent& e) {
  char buf[192];
  if (e.kind == TraceKind::kDrop) {
    std::snprintf(buf, sizeof(buf),
                  "%s %.6f %s %s uid %llu flow %d seq %u %uB (%s)",
                  to_string(e.kind), e.at.sec(), e.where, e.msg,
                  static_cast<unsigned long long>(e.uid), e.flow, e.seq,
                  e.bytes, to_string(e.reason));
  } else {
    std::snprintf(buf, sizeof(buf),
                  "%s %.6f %s %s uid %llu flow %d seq %u %uB",
                  to_string(e.kind), e.at.sec(), e.where, e.msg,
                  static_cast<unsigned long long>(e.uid), e.flow, e.seq,
                  e.bytes);
  }
  return buf;
}

}  // namespace fhmip
