#include "sim/trace.hpp"

#include <cstdio>

namespace fhmip {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kCreate:
      return "n";
    case TraceKind::kTransmit:
      return "+";
    case TraceKind::kDeliver:
      return "r";
    case TraceKind::kForward:
      return "f";
    case TraceKind::kLocalDeliver:
      return "^";
    case TraceKind::kBufferEnter:
      return "B";
    case TraceKind::kBufferExit:
      return "b";
    case TraceKind::kDiscard:
      return "x";
    case TraceKind::kDrop:
      return "d";
  }
  return "?";
}

std::string format_trace_line(const TraceEvent& e) {
  char buf[192];
  // Guard against fields that point nowhere when an event is hand-built.
  const char* where = e.where != nullptr ? e.where : "?";
  const char* msg = e.msg != nullptr ? e.msg : "?";
  if (e.reason.has_value()) {
    std::snprintf(buf, sizeof(buf),
                  "%s %.6f %s %s uid %llu flow %d seq %u %uB (%s)",
                  to_string(e.kind), e.at.sec(), where, msg,
                  static_cast<unsigned long long>(e.uid), e.flow, e.seq,
                  e.bytes, to_string(*e.reason));
  } else {
    std::snprintf(buf, sizeof(buf),
                  "%s %.6f %s %s uid %llu flow %d seq %u %uB",
                  to_string(e.kind), e.at.sec(), where, msg,
                  static_cast<unsigned long long>(e.uid), e.flow, e.seq,
                  e.bytes);
  }
  return buf;
}

}  // namespace fhmip
