#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace fhmip {

/// Opaque handle for a scheduled event; used for cancellation.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Deterministic single-threaded discrete-event scheduler.
///
/// Events at the same timestamp execute in scheduling order (FIFO), which is
/// the property protocol state machines in this library rely on. Cancellation
/// is lazy: cancelled ids are skipped when they reach the head of the queue.
class Scheduler {
 public:
  using Action = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t`. Scheduling in the past is clamped
  /// to `now()` (the event still runs, after currently pending events).
  EventId schedule_at(SimTime t, Action fn);

  /// Schedules `fn` at `now() + delay`.
  EventId schedule_in(SimTime delay, Action fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Cancelling an already-run or invalid id is a
  /// harmless no-op, so callers can keep stale handles.
  void cancel(EventId id);

  /// True if `id` is still pending (scheduled, not yet run, not cancelled).
  bool pending(EventId id) const;

  /// Runs events until the queue is empty or `max_events` have run.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs all events with timestamp <= `t`, then advances the clock to `t`.
  std::size_t run_until(SimTime t);

  /// Executes exactly one event if available. Returns false on empty queue.
  bool step();

  std::size_t queue_size() const { return heap_.size() - cancelled_.size(); }
  bool empty() const { return queue_size() == 0; }
  std::uint64_t events_executed() const { return executed_; }

  /// Runs the cancelled-set/heap consistency audits (FHMIP_AUDIT; no-op at
  /// audit level 0). Exposed so tests and long scenarios can sweep.
  void audit_invariants() const;

 private:
  struct Entry {
    SimTime at;
    EventId id;  // also the tiebreaker: ids are issued monotonically
    Action fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  bool pop_next(Entry& out);

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> live_;
  SimTime now_;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace fhmip
