#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.hpp"

namespace fhmip {

/// Opaque handle for a scheduled event; used for cancellation.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Deterministic single-threaded discrete-event scheduler.
///
/// Events at the same timestamp execute in scheduling order (FIFO), which is
/// the property protocol state machines in this library rely on.
///
/// Storage is a slab of generation-tagged slots indexed by a 4-ary min-heap
/// of slot indices, ordered by (time, issue sequence). An EventId packs the
/// slot index and the slot's generation at issue time, so `pending()` and
/// `cancel()` are O(1) slot loads — no hash lookups — and stale handles from
/// a reused slot fail the generation check. Cancellation is lazy: the slot
/// is flagged and skipped (and recycled) when it reaches the heap root. The
/// 4-ary layout halves the sift-down depth vs. a binary heap and keeps the
/// children of a node in at most two cache lines.
class Scheduler {
 public:
  using Action = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t`. Scheduling in the past is clamped
  /// to `now()` (the event still runs, after currently pending events).
  EventId schedule_at(SimTime t, Action fn);

  /// Schedules `fn` at `now() + delay`.
  EventId schedule_in(SimTime delay, Action fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Cancelling an already-run or invalid id is a
  /// harmless no-op, so callers can keep stale handles.
  void cancel(EventId id);

  /// True if `id` is still pending (scheduled, not yet run, not cancelled).
  bool pending(EventId id) const;

  /// Runs events until the queue is empty or `max_events` have run.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs all events with timestamp <= `t` (including events scheduled at
  /// <= `t` by events already running inside this call), then advances the
  /// clock to `t`.
  std::size_t run_until(SimTime t);

  /// Executes exactly one event if available. Returns false on empty queue.
  bool step();

  std::size_t queue_size() const { return live_; }
  bool empty() const { return live_ == 0; }
  std::uint64_t events_executed() const { return executed_; }

  /// Runs the slab/heap consistency audits (FHMIP_AUDIT; no-op at audit
  /// level 0). Exposed so tests and long scenarios can sweep.
  void audit_invariants() const;

 private:
  /// One slab entry. A slot not on the free list is "armed": it owns an
  /// action and occupies exactly one heap cell. `gen` counts reuses of the
  /// slot; handles from a previous occupancy no longer match it.
  struct Slot {
    SimTime at;
    std::uint64_t seq = 0;  // issue order; the same-time FIFO tiebreaker
    Action fn;
    std::uint32_t gen = 0;
    bool armed = false;
    bool cancelled = false;
  };

  static constexpr std::uint32_t decode_slot(EventId id) {
    return static_cast<std::uint32_t>(id & 0xFFFFFFFFu) - 1;
  }
  static constexpr std::uint32_t decode_gen(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static constexpr EventId encode(std::uint32_t slot, std::uint32_t gen) {
    // slot+1 keeps every valid id distinct from kInvalidEvent (0).
    return (static_cast<EventId>(gen) << 32) | (slot + 1);
  }

  /// (time, seq) heap order between two armed slots.
  bool earlier(std::uint32_t a, std::uint32_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.at != sb.at) return sa.at < sb.at;
    return sa.seq < sb.seq;
  }

  std::uint32_t acquire_slot();
  void release_root();
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);

  /// Pops the earliest non-cancelled action with timestamp <= `limit`,
  /// recycling any cancelled slots it skips past. The single dequeue path:
  /// `step`/`run` pass an unbounded limit, `run_until` passes `t`.
  bool pop_runnable(SimTime limit, SimTime& at_out, Action& fn_out);

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  // recycled slot indices
  std::vector<std::uint32_t> heap_;  // 4-ary min-heap of armed slot indices
  std::size_t live_ = 0;             // armed and not cancelled
  std::uint64_t next_seq_ = 1;
  SimTime now_;
  std::uint64_t executed_ = 0;
};

}  // namespace fhmip
