#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace fhmip {

/// Simulation time, stored as integer nanoseconds for exact, deterministic
/// arithmetic. Negative values are permitted in intermediate arithmetic but
/// the scheduler never executes events before time zero.
class SimTime {
 public:
  constexpr SimTime() = default;

  /// Named constructors. Fractional inputs are rounded to the nearest ns.
  static constexpr SimTime nanos(std::int64_t v) { return SimTime{v}; }
  static constexpr SimTime micros(std::int64_t v) { return SimTime{v * 1000}; }
  static constexpr SimTime millis(std::int64_t v) {
    return SimTime{v * 1'000'000};
  }
  static constexpr SimTime seconds(std::int64_t v) {
    return SimTime{v * 1'000'000'000};
  }
  static SimTime from_seconds(double s);
  static SimTime from_millis(double ms);

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double micros_f() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double millis_f() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr bool is_zero() const { return ns_ == 0; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.ns_ + b.ns_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.ns_ - b.ns_};
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime{a.ns_ * k};
  }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) {
    return SimTime{a.ns_ * k};
  }
  constexpr SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ns_ -= o.ns_;
    return *this;
  }
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  /// "12.345ms"-style rendering for logs and traces.
  std::string to_string() const;

 private:
  explicit constexpr SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

namespace timeliterals {
constexpr SimTime operator""_ns(unsigned long long v) {
  return SimTime::nanos(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_us(unsigned long long v) {
  return SimTime::micros(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return SimTime::millis(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_s(unsigned long long v) {
  return SimTime::seconds(static_cast<std::int64_t>(v));
}
}  // namespace timeliterals

}  // namespace fhmip
