#pragma once

#include <cstdint>

#include "mip/binding.hpp"
#include "net/node.hpp"

namespace fhmip {

/// Mobile IP home agent (§2.1.1): keeps the mobility binding table for hosts
/// whose home address lives in this router's prefix, answers registration
/// requests, and tunnels intercepted traffic to the registered care-of
/// address. Used for macro mobility; the MAP handles the local level.
class HomeAgent {
 public:
  explicit HomeAgent(Node& node);
  ~HomeAgent();

  HomeAgent(const HomeAgent&) = delete;
  HomeAgent& operator=(const HomeAgent&) = delete;

  Node& node() { return node_; }
  Address address() const { return node_.address(); }
  std::uint32_t home_prefix() const { return node_.address().net; }

  BindingCache& bindings() { return bindings_; }
  std::uint64_t packets_tunneled() const { return tunneled_; }
  std::uint64_t registrations() const { return registrations_; }
  std::uint64_t deregistrations() const { return deregistrations_; }

 private:
  void intercept(PacketPtr p);
  bool handle_control(PacketPtr& p);

  Node& node_;
  Node::ControlHandlerId ctrl_id_ = 0;
  BindingCache bindings_;
  std::uint64_t tunneled_ = 0;
  std::uint64_t registrations_ = 0;
  std::uint64_t deregistrations_ = 0;
};

}  // namespace fhmip
