#pragma once

#include <optional>
#include <unordered_map>

#include "net/address.hpp"
#include "sim/time.hpp"

namespace fhmip {

/// A mobility binding: some stable address (home address or RCoA) currently
/// maps to a care-of address, until `expires`.
struct BindingEntry {
  Address coa;
  SimTime expires;
};

/// The binding cache kept by home agents and MAPs (§2.1.1 "mobility binding
/// table", §2.2.1 MAP binding cache). Lookup is lazy-expiring.
class BindingCache {
 public:
  void update(Address key, Address coa, SimTime now, SimTime lifetime);
  void remove(Address key);

  /// Returns the care-of address if a live binding exists.
  std::optional<Address> lookup(Address key, SimTime now) const;

  std::size_t size() const { return entries_.size(); }
  void purge_expired(SimTime now);

 private:
  std::unordered_map<std::uint64_t, BindingEntry> entries_;
};

}  // namespace fhmip
