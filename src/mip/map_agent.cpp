#include "mip/map_agent.hpp"

namespace fhmip {

MapAgent::MapAgent(Node& node) : node_(node) {
  // Intercept everything in the regional prefix that is not the MAP itself.
  node_.routes().set_prefix_route(
      regional_prefix(),
      Route::to([this](PacketPtr p) { intercept(std::move(p)); }));
  ctrl_id_ = node_.add_control_handler(
      [this](PacketPtr& p) { return handle_control(p); });
}

MapAgent::~MapAgent() {
  node_.routes().remove_prefix_route(regional_prefix());
  node_.remove_control_handler(ctrl_id_);
}

void MapAgent::intercept(PacketPtr p) {
  Simulation& sim = node_.sim();
  const auto coa = bindings_.lookup(p->dst, sim.now());
  if (!coa) {
    sim.stats().record_drop(p->flow, DropReason::kNoRoute);
    trace_packet(sim, TraceKind::kDrop, node_.name().c_str(), *p,
                 DropReason::kNoRoute);
    return;
  }
  // Simultaneous binding: bicast a copy toward the secondary care-of
  // address (the duplicate does not count as a fresh `sent`).
  if (const auto second = secondary_.lookup(p->dst, sim.now())) {
    auto copy = p->clone(sim.next_uid());
    copy->encapsulate(*second);
    ++bicast_;
    trace_packet(sim, TraceKind::kCreate, node_.name().c_str(), *copy);
    node_.send(std::move(copy));
  }
  ++tunneled_;
  p->encapsulate(*coa);
  node_.send(std::move(p));
}

bool MapAgent::handle_control(PacketPtr& p) {
  const auto* bu = std::get_if<BindingUpdateMsg>(&p->msg);
  if (bu == nullptr) return false;
  Simulation& sim = node_.sim();
  ++updates_;
  if (bu->simultaneous) {
    secondary_.update(bu->regional, bu->lcoa, sim.now(), bu->lifetime);
  } else {
    bindings_.update(bu->regional, bu->lcoa, sim.now(), bu->lifetime);
    secondary_.remove(bu->regional);
  }
  BindingAckMsg ack;
  ack.mh = bu->mh;
  ack.accepted = true;
  // Reply to the LCoA so the ack reaches the host at its new location even
  // before any other state converges.
  node_.send(make_control(sim, address(), bu->lcoa, ack));
  return true;
}

}  // namespace fhmip
