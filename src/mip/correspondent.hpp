#pragma once

#include <cstdint>

#include "mip/binding.hpp"
#include "net/node.hpp"

namespace fhmip {

/// MIPv6 route optimization at a correspondent node (§2.1.2: "Route
/// Optimization is built in as a fundamental part of Mobile IPv6").
///
/// The correspondent keeps its own binding cache; once the mobile host
/// sends it a binding update, locally originated traffic is tunneled
/// straight to the care-of address instead of triangle-routing through the
/// home agent / MAP. Installed via the node's forward filter, so it sees
/// every packet the correspondent originates.
class CorrespondentAgent {
 public:
  explicit CorrespondentAgent(Node& node);
  ~CorrespondentAgent();

  CorrespondentAgent(const CorrespondentAgent&) = delete;
  CorrespondentAgent& operator=(const CorrespondentAgent&) = delete;

  BindingCache& bindings() { return bindings_; }
  std::uint64_t packets_optimized() const { return optimized_; }
  std::uint64_t binding_updates() const { return updates_; }

 private:
  bool handle_control(PacketPtr& p);
  void maybe_reroute(Packet& p);

  Node& node_;
  Node::ControlHandlerId ctrl_id_ = 0;
  BindingCache bindings_;
  std::uint64_t optimized_ = 0;
  std::uint64_t updates_ = 0;
};

}  // namespace fhmip
