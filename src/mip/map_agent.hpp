#pragma once

#include <cstdint>

#include "mip/binding.hpp"
#include "net/node.hpp"

namespace fhmip {

/// Hierarchical MIPv6 Mobility Anchor Point (§2.2). The MAP owns the
/// regional prefix: packets addressed to a mobile host's regional address
/// (RCoA-style) are intercepted here, looked up in the binding cache and
/// tunneled (IPv6 encapsulation) to the host's current on-link care-of
/// address (LCoA). Binding updates from mobile hosts refresh the cache.
class MapAgent {
 public:
  explicit MapAgent(Node& node);
  ~MapAgent();

  MapAgent(const MapAgent&) = delete;
  MapAgent& operator=(const MapAgent&) = delete;

  Node& node() { return node_; }
  Address address() const { return node_.address(); }
  std::uint32_t regional_prefix() const { return node_.address().net; }

  BindingCache& bindings() { return bindings_; }
  /// Secondary bindings (simultaneous binding, §3.1.1): when present,
  /// intercepted packets are bicast to both care-of addresses.
  BindingCache& secondary_bindings() { return secondary_; }

  std::uint64_t packets_tunneled() const { return tunneled_; }
  std::uint64_t packets_bicast() const { return bicast_; }
  std::uint64_t binding_updates() const { return updates_; }

 private:
  void intercept(PacketPtr p);
  bool handle_control(PacketPtr& p);

  Node& node_;
  Node::ControlHandlerId ctrl_id_ = 0;
  BindingCache bindings_;
  BindingCache secondary_;
  std::uint64_t tunneled_ = 0;
  std::uint64_t bicast_ = 0;
  std::uint64_t updates_ = 0;
};

}  // namespace fhmip
