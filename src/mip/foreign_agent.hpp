#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "net/node.hpp"

namespace fhmip {

/// Mobile IPv4 foreign agent (§2.1.1): answers agent solicitations with
/// advertisements offering its own address as the foreign-agent care-of
/// address, relays registration requests to the visitor's home agent,
/// maintains the visitor list ("home address, home agent address, MAC
/// address of the mobile node, association lifetime"), decapsulates
/// HA-tunneled traffic and forwards it to the visiting host.
///
/// Delivery to visitors uses a caller-provided hook (`set_delivery`) so the
/// agent composes with any link layer (a plain wired leaf in tests, the
/// WLAN layer in scenarios).
class ForeignAgent {
 public:
  struct Visitor {
    MhId mh = kNoNode;
    Address home_addr;
    Address home_agent;
    SimTime expires;
    bool registered = false;  // reply from the HA seen
  };

  explicit ForeignAgent(Node& node);
  ~ForeignAgent();

  ForeignAgent(const ForeignAgent&) = delete;
  ForeignAgent& operator=(const ForeignAgent&) = delete;

  Node& node() { return node_; }
  Address address() const { return node_.address(); }
  /// The care-of address offered to visitors (the FA's own address —
  /// "foreign agent care-of address" mode).
  Address care_of_address() const { return node_.address(); }

  /// How the FA reaches a visiting host (e.g. transmit on its radio link).
  void set_delivery(std::function<void(MhId, PacketPtr)> fn) {
    deliver_ = std::move(fn);
  }

  /// Periodic advertisement to a specific visitor (stage 1a); the WLAN
  /// layer drives the fan-out.
  void advertise_to(Address mh_addr);

  const Visitor* visitor(MhId mh) const;
  std::size_t visitor_count() const { return visitors_.size(); }
  void purge_expired();

  std::uint64_t advertisements_sent() const { return adverts_; }
  std::uint64_t requests_relayed() const { return relayed_; }
  std::uint64_t replies_relayed() const { return replies_; }
  std::uint64_t packets_delivered() const { return delivered_; }

 private:
  bool handle_control(PacketPtr& p);
  void handle_visitor_packet(PacketPtr p);

  Node& node_;
  Node::ControlHandlerId ctrl_id_ = 0;
  std::function<void(MhId, PacketPtr)> deliver_;
  std::map<MhId, Visitor> visitors_;
  std::uint32_t adv_sequence_ = 0;
  std::uint64_t adverts_ = 0;
  std::uint64_t relayed_ = 0;
  std::uint64_t replies_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace fhmip
