#pragma once

#include <cstdint>
#include <functional>

#include "net/node.hpp"

namespace fhmip {

/// Mobile-host-side mobility client: sends binding updates (HMIPv6 local
/// registration with the MAP) and MIPv4-style registration requests (home
/// agent), and tracks acknowledgements.
class MobileIpClient {
 public:
  MobileIpClient(Node& node, Address regional_addr, Address map_addr);
  ~MobileIpClient();

  MobileIpClient(const MobileIpClient&) = delete;
  MobileIpClient& operator=(const MobileIpClient&) = delete;

  /// Binds the regional address to `lcoa` at the MAP (§2.2.1 step 4).
  void send_binding_update(Address lcoa, SimTime lifetime);

  /// Adds `lcoa` as a secondary (bicast) binding — simultaneous binding,
  /// §3.1.1. Cleared by the next ordinary binding update.
  void send_simultaneous_binding(Address lcoa, SimTime lifetime);

  /// Route optimization (§2.1.2): sends a binding update to an arbitrary
  /// correspondent instead of the MAP.
  void send_binding_update_to(Address correspondent, Address lcoa,
                              SimTime lifetime);

  /// MIPv4 registration (§2.1.1 stage 2). `via` is where the request is
  /// sent — the home agent directly (co-located care-of address) or a
  /// foreign agent that relays it to `home_agent`.
  void send_registration(Address via, Address home_agent, Address home_addr,
                         Address coa, SimTime lifetime);

  void set_on_binding_ack(std::function<void()> cb) {
    on_binding_ack_ = std::move(cb);
  }
  void set_on_registration_reply(std::function<void(bool)> cb) {
    on_registration_reply_ = std::move(cb);
  }

  Address regional() const { return regional_; }
  std::uint32_t updates_sent() const { return updates_sent_; }
  std::uint32_t acks_received() const { return acks_received_; }
  std::uint32_t registrations_sent() const { return registrations_sent_; }
  bool bound() const { return acks_received_ > 0; }

 private:
  bool handle_control(PacketPtr& p);

  Node& node_;
  Node::ControlHandlerId ctrl_id_ = 0;
  Address regional_;
  Address map_;
  std::function<void()> on_binding_ack_;
  std::function<void(bool)> on_registration_reply_;
  std::uint32_t updates_sent_ = 0;
  std::uint32_t acks_received_ = 0;
  std::uint32_t registrations_sent_ = 0;
};

}  // namespace fhmip
