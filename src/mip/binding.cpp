#include "mip/binding.hpp"

namespace fhmip {

void BindingCache::update(Address key, Address coa, SimTime now,
                          SimTime lifetime) {
  if (lifetime.is_zero()) {
    remove(key);  // lifetime 0 = deregistration (§2.1.1 stage 4)
    return;
  }
  entries_[key.key()] = BindingEntry{coa, now + lifetime};
}

void BindingCache::remove(Address key) { entries_.erase(key.key()); }

std::optional<Address> BindingCache::lookup(Address key, SimTime now) const {
  auto it = entries_.find(key.key());
  if (it == entries_.end() || it->second.expires <= now) return std::nullopt;
  return it->second.coa;
}

void BindingCache::purge_expired(SimTime now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expires <= now) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace fhmip
