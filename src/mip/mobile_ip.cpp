#include "mip/mobile_ip.hpp"

namespace fhmip {

MobileIpClient::MobileIpClient(Node& node, Address regional_addr,
                               Address map_addr)
    : node_(node), regional_(regional_addr), map_(map_addr) {
  ctrl_id_ = node_.add_control_handler(
      [this](PacketPtr& p) { return handle_control(p); });
}

MobileIpClient::~MobileIpClient() { node_.remove_control_handler(ctrl_id_); }

void MobileIpClient::send_binding_update(Address lcoa, SimTime lifetime) {
  BindingUpdateMsg bu;
  bu.mh = node_.id();
  bu.regional = regional_;
  bu.lcoa = lcoa;
  bu.lifetime = lifetime;
  ++updates_sent_;
  // Baseline MIP: a lost BU is recovered by the periodic lifetime-driven
  // refresh, not a per-message timer. NOLINT-FHMIP(PROTO-01)
  node_.send(make_control(node_.sim(), lcoa, map_, bu));
}

void MobileIpClient::send_binding_update_to(Address correspondent,
                                            Address lcoa, SimTime lifetime) {
  BindingUpdateMsg bu;
  bu.mh = node_.id();
  bu.regional = regional_;
  bu.lcoa = lcoa;
  bu.lifetime = lifetime;
  ++updates_sent_;
  // Route-optimization BU to a CN is best-effort; traffic falls back to
  // the HA tunnel until the next refresh. NOLINT-FHMIP(PROTO-01)
  node_.send(make_control(node_.sim(), lcoa, correspondent, bu));
}

void MobileIpClient::send_simultaneous_binding(Address lcoa,
                                               SimTime lifetime) {
  BindingUpdateMsg bu;
  bu.mh = node_.id();
  bu.regional = regional_;
  bu.lcoa = lcoa;
  bu.lifetime = lifetime;
  bu.simultaneous = true;
  ++updates_sent_;
  // Sent from the *current* address; the new LCoA is not usable yet.
  // Simultaneous binding is an optimization: loss degrades to the plain
  // handover path, recovered at the next refresh. NOLINT-FHMIP(PROTO-01)
  node_.send(make_control(node_.sim(), regional_, map_, bu));
}

void MobileIpClient::send_registration(Address via, Address home_agent,
                                       Address home_addr, Address coa,
                                       SimTime lifetime) {
  RegistrationRequestMsg req;
  req.mh = node_.id();
  req.home_addr = home_addr;
  req.home_agent = home_agent;
  req.coa = coa;
  req.lifetime = lifetime;
  ++registrations_sent_;
  // Baseline MIP registration relies on lifetime refresh for recovery;
  // experiments drive retries from the scenario. NOLINT-FHMIP(PROTO-01)
  node_.send(make_control(node_.sim(), coa, via, req));
}

bool MobileIpClient::handle_control(PacketPtr& p) {
  if (const auto* ack = std::get_if<BindingAckMsg>(&p->msg)) {
    if (ack->mh != node_.id()) return false;
    ++acks_received_;
    if (on_binding_ack_) on_binding_ack_();
    return true;
  }
  if (const auto* rep = std::get_if<RegistrationReplyMsg>(&p->msg)) {
    if (rep->mh != node_.id()) return false;
    if (on_registration_reply_) on_registration_reply_(rep->accepted);
    return true;
  }
  return false;
}

}  // namespace fhmip
