#include "mip/correspondent.hpp"

namespace fhmip {

CorrespondentAgent::CorrespondentAgent(Node& node) : node_(node) {
  node_.set_forward_filter([this](Packet& p) { maybe_reroute(p); });
  ctrl_id_ = node_.add_control_handler(
      [this](PacketPtr& p) { return handle_control(p); });
}

CorrespondentAgent::~CorrespondentAgent() {
  node_.set_forward_filter(nullptr);
  node_.remove_control_handler(ctrl_id_);
}

void CorrespondentAgent::maybe_reroute(Packet& p) {
  if (p.is_control() || p.tunneled()) return;
  const auto coa = bindings_.lookup(p.dst, node_.sim().now());
  if (!coa) return;
  p.encapsulate(*coa);
  ++optimized_;
}

bool CorrespondentAgent::handle_control(PacketPtr& p) {
  const auto* bu = std::get_if<BindingUpdateMsg>(&p->msg);
  if (bu == nullptr) return false;
  Simulation& sim = node_.sim();
  ++updates_;
  bindings_.update(bu->regional, bu->lcoa, sim.now(), bu->lifetime);
  BindingAckMsg ack;
  ack.mh = bu->mh;
  ack.accepted = true;
  node_.send(make_control(sim, node_.address(), bu->lcoa, ack));
  return true;
}

}  // namespace fhmip
