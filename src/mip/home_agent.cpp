#include "mip/home_agent.hpp"

namespace fhmip {

HomeAgent::HomeAgent(Node& node) : node_(node) {
  node_.routes().set_prefix_route(
      home_prefix(),
      Route::to([this](PacketPtr p) { intercept(std::move(p)); }));
  ctrl_id_ = node_.add_control_handler(
      [this](PacketPtr& p) { return handle_control(p); });
}

HomeAgent::~HomeAgent() {
  node_.routes().remove_prefix_route(home_prefix());
  node_.remove_control_handler(ctrl_id_);
}

void HomeAgent::intercept(PacketPtr p) {
  Simulation& sim = node_.sim();
  const auto coa = bindings_.lookup(p->dst, sim.now());
  if (!coa) {
    // Host is at home (or unregistered): without a visiting host on this
    // simulated subnet, the packet has nowhere to go.
    sim.stats().record_drop(p->flow, DropReason::kNoRoute);
    trace_packet(sim, TraceKind::kDrop, node_.name().c_str(), *p,
                 DropReason::kNoRoute);
    return;
  }
  ++tunneled_;
  p->encapsulate(*coa);  // IP-within-IP (§2.1.1 stage 3b)
  node_.send(std::move(p));
}

bool HomeAgent::handle_control(PacketPtr& p) {
  const auto* req = std::get_if<RegistrationRequestMsg>(&p->msg);
  if (req == nullptr) return false;
  Simulation& sim = node_.sim();
  if (req->lifetime.is_zero()) {
    bindings_.remove(req->home_addr);
    ++deregistrations_;
  } else {
    bindings_.update(req->home_addr, req->coa, sim.now(), req->lifetime);
    ++registrations_;
  }
  RegistrationReplyMsg rep;
  rep.mh = req->mh;
  rep.home_addr = req->home_addr;
  rep.lifetime = req->lifetime;
  rep.accepted = true;
  // Reply to whoever sent the request — the host itself (co-located CoA)
  // or the relaying foreign agent (stage 2d).
  node_.send(make_control(sim, address(), p->src, rep));
  return true;
}

}  // namespace fhmip
