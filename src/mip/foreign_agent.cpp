#include "mip/foreign_agent.hpp"

namespace fhmip {

ForeignAgent::ForeignAgent(Node& node) : node_(node) {
  ctrl_id_ = node_.add_control_handler(
      [this](PacketPtr& p) { return handle_control(p); });
}

ForeignAgent::~ForeignAgent() { node_.remove_control_handler(ctrl_id_); }

void ForeignAgent::advertise_to(Address mh_addr) {
  AgentAdvertisementMsg adv;
  adv.agent_node = node_.id();
  adv.agent_addr = address();
  adv.care_of_addr = care_of_address();
  adv.is_foreign_agent = true;
  adv.registration_lifetime = SimTime::seconds(60);
  adv.sequence = ++adv_sequence_;
  ++adverts_;
  node_.send(make_control(node_.sim(), address(), mh_addr, adv, 80));
}

const ForeignAgent::Visitor* ForeignAgent::visitor(MhId mh) const {
  auto it = visitors_.find(mh);
  return it == visitors_.end() ? nullptr : &it->second;
}

void ForeignAgent::purge_expired() {
  const SimTime now = node_.sim().now();
  for (auto it = visitors_.begin(); it != visitors_.end();) {
    if (it->second.expires <= now) {
      node_.routes().remove_host_route(it->second.home_addr);
      it = visitors_.erase(it);
    } else {
      ++it;
    }
  }
}

bool ForeignAgent::handle_control(PacketPtr& p) {
  Simulation& sim = node_.sim();

  if (const auto* sol = std::get_if<AgentSolicitationMsg>(&p->msg)) {
    (void)sol;
    advertise_to(p->src);
    return true;
  }

  if (const auto* req = std::get_if<RegistrationRequestMsg>(&p->msg)) {
    // Stage 2c: the FA records the visitor and relays the request to the
    // home agent under its own address. A request naming this agent as
    // the home agent is a misconfiguration — relaying it would loop.
    if (req->home_agent == address() || !req->home_agent.valid()) {
      return true;
    }
    Visitor& v = visitors_[req->mh];
    v.mh = req->mh;
    v.home_addr = req->home_addr;
    v.home_agent = req->home_agent;
    v.expires = sim.now() + req->lifetime;
    v.registered = false;
    RegistrationRequestMsg relay = *req;
    relay.coa = care_of_address();  // FA-CoA mode
    ++relayed_;
    // The relay is per-message stateless; the originating MH owns
    // retransmission and re-elicits a lost relay. NOLINT-FHMIP(PROTO-01)
    node_.send(make_control(sim, address(), req->home_agent, relay));
    return true;
  }

  if (const auto* rep = std::get_if<RegistrationReplyMsg>(&p->msg)) {
    auto it = visitors_.find(rep->mh);
    if (it == visitors_.end()) return true;  // stale reply
    Visitor& v = it->second;
    RegistrationReplyMsg relay = *rep;
    const Address mh_dst = v.home_addr;
    const MhId mh = v.mh;
    if (rep->accepted && !rep->lifetime.is_zero()) {
      // Stage 2e: complete the visitor entry and start serving the host:
      // tunneled packets for its home address terminate here.
      v.registered = true;
      v.expires = sim.now() + rep->lifetime;
      node_.routes().set_host_route(
          v.home_addr, Route::to([this](PacketPtr pkt) {
            handle_visitor_packet(std::move(pkt));
          }));
    } else {
      // Deregistration (or refusal): drop the visitor state.
      node_.routes().remove_host_route(v.home_addr);
      visitors_.erase(it);
    }
    ++replies_;
    auto out = make_control(sim, address(), mh_dst, relay);
    if (deliver_) {
      deliver_(mh, std::move(out));
    } else {
      node_.send(std::move(out));
    }
    return true;
  }

  return false;
}

void ForeignAgent::handle_visitor_packet(PacketPtr p) {
  // Stage 3c: decapsulation already happened at the node layer (the outer
  // destination was this agent's address); what arrives here carries the
  // visitor's home address.
  auto it = visitors_.end();
  for (auto v = visitors_.begin(); v != visitors_.end(); ++v) {
    if (v->second.home_addr == p->dst) {
      it = v;
      break;
    }
  }
  if (it == visitors_.end() || !it->second.registered) {
    node_.sim().stats().record_drop(p->flow, DropReason::kUnattached);
    trace_packet(node_.sim(), TraceKind::kDrop, node_.name().c_str(), *p,
                 DropReason::kUnattached);
    return;
  }
  ++delivered_;
  if (deliver_) {
    deliver_(it->second.mh, std::move(p));
  } else {
    node_.sim().stats().record_drop(p->flow, DropReason::kNoRoute);
    trace_packet(node_.sim(), TraceKind::kDrop, node_.name().c_str(), *p,
                 DropReason::kNoRoute);
  }
}

}  // namespace fhmip
