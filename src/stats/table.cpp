#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace fhmip {

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << "| " << cell << std::string(widths[c] - cell.size() + 1, ' ');
    }
    out << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TextTable::print(const std::string& title) const {
  std::printf("\n== %s ==\n%s", title.c_str(), render().c_str());
}

}  // namespace fhmip
