#include "stats/flow_table.hpp"

#include <cstdio>

#include "stats/recorder.hpp"

namespace fhmip {

TextTable flow_table(const StatsHub& stats,
                     const std::function<std::string(FlowId)>& class_label) {
  std::vector<std::string> headers = {"flow", "sent", "delivered", "dropped",
                                      "mean ms", "p99 ms", "max ms"};
  if (class_label) headers.insert(headers.begin() + 1, "class");
  TextTable t(std::move(headers));
  for (FlowId f : stats.flows()) {
    if (f == kNoFlow) continue;
    const FlowCounters& c = stats.flow(f);
    const DelaySummary d = summarize_delays(stats.samples(f));
    char mean[32], p99[32], mx[32];
    std::snprintf(mean, sizeof(mean), "%.2f", d.mean * 1000);
    std::snprintf(p99, sizeof(p99), "%.2f", d.p99 * 1000);
    std::snprintf(mx, sizeof(mx), "%.2f", d.max * 1000);
    std::vector<std::string> row = {"F" + std::to_string(f),
                                    std::to_string(c.sent),
                                    std::to_string(c.delivered),
                                    std::to_string(c.dropped),
                                    mean, p99, mx};
    if (class_label) row.insert(row.begin() + 1, class_label(f));
    t.add_row(std::move(row));
  }
  return t;
}

}  // namespace fhmip
