#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/messages.hpp"
#include "sim/time.hpp"

namespace fhmip {

/// How an inter-AR handover attempt ended.
enum class HandoverOutcome : std::uint8_t {
  /// The full anticipated choreography ran: RtSolPr+BI answered, FBU sent
  /// on the old link before the blackout.
  kPredictive = 0,
  /// The anticipated path broke down (or was disabled) and the FBU went
  /// via the new link after attachment (§2.3.2), acknowledged by an FBack.
  kReactive = 1,
  /// Even the reactive FBU retries exhausted without an FBack: the host
  /// reattached but no redirection was established by the fast-handover
  /// machinery (traffic resumes only via the binding update).
  kFailed = 2,
};

/// Why a non-predictive outcome happened (kNone for clean predictive runs).
enum class HandoverCause : std::uint8_t {
  kNone = 0,
  /// Anticipation disabled by configuration (cfg.anticipate = false).
  kNotAnticipated = 1,
  /// RtSolPr retries exhausted without a PrRtAdv.
  kNoPrRtAdv = 2,
  /// Anticipated, but the predisconnect window was missed (trigger arrived
  /// for a different target than the one the radio switched to).
  kTargetChanged = 3,
  /// Reactive FBU retries exhausted without an FBack (kFailed attempts).
  kNoFback = 4,
  /// The per-attempt liveness watchdog expired with the choreography wedged
  /// (no retransmission timer left to make progress) and tore it down.
  kWatchdog = 5,
};

const char* to_string(HandoverOutcome o);
const char* to_string(HandoverCause c);
inline constexpr int kNumHandoverOutcomes = 3;
inline constexpr int kNumHandoverCauses = 6;

/// Per-attempt latency decomposition, produced by the handover timeline
/// (src/obs/timeline.hpp). A span is only meaningful when its `has_` flag is
/// set: e.g. a reactive attempt has no anticipation span, a predictive one
/// whose radio never dropped has no blackout.
struct PhaseBreakdown {
  SimTime anticipation;  // L2 trigger -> PrRtAdv received
  SimTime fbu_fback;     // first FBU sent -> FBack received
  SimTime blackout;      // L2 detach -> L2 attach
  SimTime total;         // attempt start -> resolution
  bool has_anticipation = false;
  bool has_fbu_fback = false;
  bool has_blackout = false;
  bool has_total = false;  // false when no timeline observed the attempt
};

/// One resolved handover attempt.
struct HandoverAttempt {
  MhId mh = kNoNode;
  SimTime at;  // resolution time (attach for predictive, FBack/exhaustion
               // for reactive/failed)
  HandoverOutcome outcome = HandoverOutcome::kPredictive;
  HandoverCause cause = HandoverCause::kNone;
  PhaseBreakdown phases;  // all-flags-false when no timeline was attached
};

/// Collects per-attempt handover outcomes so scenarios and benches can
/// report success rates under fault sweeps. One recorder is shared by all
/// mobile hosts of a scenario; agents report through `record`.
class HandoverOutcomeRecorder {
 public:
  void record(MhId mh, SimTime at, HandoverOutcome outcome,
              HandoverCause cause, const PhaseBreakdown& phases = {});

  std::uint64_t attempts() const { return attempts_.size(); }
  std::uint64_t count(HandoverOutcome o) const {
    return by_outcome_[static_cast<int>(o)];
  }
  std::uint64_t count(HandoverCause c) const {
    return by_cause_[static_cast<int>(c)];
  }
  /// Predictive + reactive attempts (the host recovered redirection).
  std::uint64_t completed() const {
    return count(HandoverOutcome::kPredictive) +
           count(HandoverOutcome::kReactive);
  }
  /// completed / attempts in [0, 1]; 1 when no attempts were made.
  double success_rate() const;

  const std::vector<HandoverAttempt>& history() const { return attempts_; }
  void reset();

  /// Aligned text table with one row per outcome and per cause — the
  /// "outcome stats table" benches print alongside the paper figures.
  std::string format_table(const std::string& title) const;

 private:
  std::vector<HandoverAttempt> attempts_;
  std::uint64_t by_outcome_[kNumHandoverOutcomes] = {};
  std::uint64_t by_cause_[kNumHandoverCauses] = {};
};

}  // namespace fhmip
