#include "stats/handover_outcomes.hpp"

#include <cstdio>

namespace fhmip {

const char* to_string(HandoverOutcome o) {
  switch (o) {
    case HandoverOutcome::kPredictive:
      return "predictive";
    case HandoverOutcome::kReactive:
      return "reactive";
    case HandoverOutcome::kFailed:
      return "failed";
  }
  return "?";
}

const char* to_string(HandoverCause c) {
  switch (c) {
    case HandoverCause::kNone:
      return "none";
    case HandoverCause::kNotAnticipated:
      return "not-anticipated";
    case HandoverCause::kNoPrRtAdv:
      return "no-prrtadv";
    case HandoverCause::kTargetChanged:
      return "target-changed";
    case HandoverCause::kNoFback:
      return "no-fback";
    case HandoverCause::kWatchdog:
      return "watchdog";
  }
  return "?";
}

void HandoverOutcomeRecorder::record(MhId mh, SimTime at,
                                     HandoverOutcome outcome,
                                     HandoverCause cause,
                                     const PhaseBreakdown& phases) {
  attempts_.push_back({mh, at, outcome, cause, phases});
  ++by_outcome_[static_cast<int>(outcome)];
  ++by_cause_[static_cast<int>(cause)];
}

double HandoverOutcomeRecorder::success_rate() const {
  if (attempts_.empty()) return 1.0;
  return static_cast<double>(completed()) /
         static_cast<double>(attempts_.size());
}

void HandoverOutcomeRecorder::reset() {
  attempts_.clear();
  for (auto& c : by_outcome_) c = 0;
  for (auto& c : by_cause_) c = 0;
}

std::string HandoverOutcomeRecorder::format_table(
    const std::string& title) const {
  char line[128];
  std::string out = title + "\n";
  std::snprintf(line, sizeof(line), "  %-18s %8llu\n", "attempts",
                static_cast<unsigned long long>(attempts()));
  out += line;
  for (int i = 0; i < kNumHandoverOutcomes; ++i) {
    std::snprintf(line, sizeof(line), "  %-18s %8llu\n",
                  to_string(static_cast<HandoverOutcome>(i)),
                  static_cast<unsigned long long>(by_outcome_[i]));
    out += line;
  }
  for (int i = 0; i < kNumHandoverCauses; ++i) {
    std::snprintf(line, sizeof(line), "  cause/%-12s %8llu\n",
                  to_string(static_cast<HandoverCause>(i)),
                  static_cast<unsigned long long>(by_cause_[i]));
    out += line;
  }
  std::snprintf(line, sizeof(line), "  %-18s %7.2f%%\n", "success rate",
                100.0 * success_rate());
  out += line;
  // Mean per-phase latencies over the attempts that exhibited the phase
  // (populated when a handover timeline fed the recorder).
  struct Span {
    const char* name;
    double sum_ms = 0;
    std::uint64_t n = 0;
  } spans[4] = {{"anticipation"}, {"fbu-fback"}, {"blackout"}, {"total"}};
  for (const auto& a : attempts_) {
    if (a.phases.has_anticipation) {
      spans[0].sum_ms += a.phases.anticipation.millis_f();
      ++spans[0].n;
    }
    if (a.phases.has_fbu_fback) {
      spans[1].sum_ms += a.phases.fbu_fback.millis_f();
      ++spans[1].n;
    }
    if (a.phases.has_blackout) {
      spans[2].sum_ms += a.phases.blackout.millis_f();
      ++spans[2].n;
    }
    if (a.phases.has_total) {
      spans[3].sum_ms += a.phases.total.millis_f();
      ++spans[3].n;
    }
  }
  for (const auto& s : spans) {
    if (s.n == 0) continue;
    std::snprintf(line, sizeof(line), "  phase/%-12s %7.2fms (n=%llu)\n",
                  s.name, s.sum_ms / static_cast<double>(s.n),
                  static_cast<unsigned long long>(s.n));
    out += line;
  }
  return out;
}

}  // namespace fhmip
