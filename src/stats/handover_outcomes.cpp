#include "stats/handover_outcomes.hpp"

#include <cstdio>

namespace fhmip {

const char* to_string(HandoverOutcome o) {
  switch (o) {
    case HandoverOutcome::kPredictive:
      return "predictive";
    case HandoverOutcome::kReactive:
      return "reactive";
    case HandoverOutcome::kFailed:
      return "failed";
  }
  return "?";
}

const char* to_string(HandoverCause c) {
  switch (c) {
    case HandoverCause::kNone:
      return "none";
    case HandoverCause::kNotAnticipated:
      return "not-anticipated";
    case HandoverCause::kNoPrRtAdv:
      return "no-prrtadv";
    case HandoverCause::kTargetChanged:
      return "target-changed";
    case HandoverCause::kNoFback:
      return "no-fback";
  }
  return "?";
}

void HandoverOutcomeRecorder::record(MhId mh, SimTime at,
                                     HandoverOutcome outcome,
                                     HandoverCause cause) {
  attempts_.push_back({mh, at, outcome, cause});
  ++by_outcome_[static_cast<int>(outcome)];
  ++by_cause_[static_cast<int>(cause)];
}

double HandoverOutcomeRecorder::success_rate() const {
  if (attempts_.empty()) return 1.0;
  return static_cast<double>(completed()) /
         static_cast<double>(attempts_.size());
}

void HandoverOutcomeRecorder::reset() {
  attempts_.clear();
  for (auto& c : by_outcome_) c = 0;
  for (auto& c : by_cause_) c = 0;
}

std::string HandoverOutcomeRecorder::format_table(
    const std::string& title) const {
  char line[128];
  std::string out = title + "\n";
  std::snprintf(line, sizeof(line), "  %-18s %8llu\n", "attempts",
                static_cast<unsigned long long>(attempts()));
  out += line;
  for (int i = 0; i < kNumHandoverOutcomes; ++i) {
    std::snprintf(line, sizeof(line), "  %-18s %8llu\n",
                  to_string(static_cast<HandoverOutcome>(i)),
                  static_cast<unsigned long long>(by_outcome_[i]));
    out += line;
  }
  for (int i = 0; i < kNumHandoverCauses; ++i) {
    std::snprintf(line, sizeof(line), "  cause/%-12s %8llu\n",
                  to_string(static_cast<HandoverCause>(i)),
                  static_cast<unsigned long long>(by_cause_[i]));
    out += line;
  }
  std::snprintf(line, sizeof(line), "  %-18s %7.2f%%\n", "success rate",
                100.0 * success_rate());
  out += line;
  return out;
}

}  // namespace fhmip
