#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hpp"

namespace fhmip {

/// A named (x, y) series, the unit benches print for each figure.
class Series {
 public:
  explicit Series(std::string name) : name_(std::move(name)) {}

  void add(double x, double y) { points_.push_back({x, y}); }
  const std::string& name() const { return name_; }
  const std::vector<std::pair<double, double>>& points() const {
    return points_;
  }
  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }

  double max_y() const;
  double min_y() const;
  double last_y() const { return points_.empty() ? 0 : points_.back().second; }

 private:
  std::string name_;
  std::vector<std::pair<double, double>> points_;
};

/// Prints a set of series sharing an x axis as an aligned text table (one
/// row per x value; missing points are blank), preceded by a title line.
/// This is the "same rows/series the paper reports" output format.
void print_series_table(const std::string& title, const std::string& x_label,
                        const std::vector<Series>& series);

/// CSV variant (x,name1,name2,...) for downstream plotting.
void print_series_csv(const std::string& x_label,
                      const std::vector<Series>& series);

/// Bins event times into fixed windows and returns throughput in Mbit/s
/// per window midpoint — used by the TCP throughput figure.
Series bin_throughput(const std::string& name,
                      const std::vector<std::pair<double, std::uint64_t>>&
                          arrivals /* (time s, bytes) */,
                      double bin_seconds, double t_begin, double t_end);

/// Nearest-rank percentile, p in [0, 100]. Returns 0 for empty input.
double percentile(std::vector<double> values, double p);

/// Order statistics over a flow's delivery delays (seconds). `jitter` is
/// the mean absolute difference between consecutive packets' delays (the
/// RFC 3550 interarrival-jitter estimator without the smoothing filter).
struct DelaySummary {
  std::size_t count = 0;
  double min = 0, mean = 0, p50 = 0, p95 = 0, p99 = 0, max = 0;
  double jitter = 0;
};
DelaySummary summarize_delays(const std::vector<DeliverySample>& samples);

}  // namespace fhmip
