#pragma once

#include <string>
#include <vector>

namespace fhmip {

/// Aligned text table for bench/table outputs (headers + string rows).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  std::size_t num_rows() const { return rows_.size(); }

  /// Renders with per-column width = max cell width + padding.
  std::string render() const;
  void print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fhmip
