#pragma once

#include <functional>
#include <string>

#include "sim/stats.hpp"
#include "stats/table.hpp"

namespace fhmip {

/// Builds the per-flow results table (sent/delivered/dropped + delay
/// summary in ms) that examples and benches print after a run.
///
/// Iteration is over StatsHub::flows(), which is sorted by FlowId, so the
/// rendered table is byte-identical run to run — part of the deterministic
/// stdout surface (DET-02). `class_label`, when provided, adds a "class"
/// column (the hub does not track traffic classes itself).
TextTable flow_table(const StatsHub& stats,
                     const std::function<std::string(FlowId)>& class_label =
                         nullptr);

}  // namespace fhmip
