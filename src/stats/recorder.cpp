#include "stats/recorder.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace fhmip {

double Series::max_y() const {
  double m = 0;
  for (const auto& [x, y] : points_) m = std::max(m, y);
  return m;
}

double Series::min_y() const {
  if (points_.empty()) return 0;
  double m = points_.front().second;
  for (const auto& [x, y] : points_) m = std::min(m, y);
  return m;
}

namespace {

// Collates series by x value (exact match on the printed representation).
std::map<double, std::vector<std::pair<std::size_t, double>>> collate(
    const std::vector<Series>& series) {
  std::map<double, std::vector<std::pair<std::size_t, double>>> rows;
  for (std::size_t i = 0; i < series.size(); ++i) {
    for (const auto& [x, y] : series[i].points()) {
      rows[x].push_back({i, y});
    }
  }
  return rows;
}

}  // namespace

void print_series_table(const std::string& title, const std::string& x_label,
                        const std::vector<Series>& series) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%14s", x_label.c_str());
  for (const auto& s : series) std::printf(" %14s", s.name().c_str());
  std::printf("\n");
  for (const auto& [x, cells] : collate(series)) {
    std::printf("%14.4g", x);
    std::size_t ci = 0;
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (ci < cells.size() && cells[ci].first == i) {
        std::printf(" %14.6g", cells[ci].second);
        ++ci;
      } else {
        std::printf(" %14s", "");
      }
    }
    std::printf("\n");
  }
}

void print_series_csv(const std::string& x_label,
                      const std::vector<Series>& series) {
  std::printf("%s", x_label.c_str());
  for (const auto& s : series) std::printf(",%s", s.name().c_str());
  std::printf("\n");
  for (const auto& [x, cells] : collate(series)) {
    std::printf("%.6g", x);
    std::size_t ci = 0;
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (ci < cells.size() && cells[ci].first == i) {
        std::printf(",%.6g", cells[ci].second);
        ++ci;
      } else {
        std::printf(",");
      }
    }
    std::printf("\n");
  }
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  if (p <= 0) return values.front();
  if (p >= 100) return values.back();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values.size())));
  return values[rank == 0 ? 0 : rank - 1];
}

DelaySummary summarize_delays(const std::vector<DeliverySample>& samples) {
  DelaySummary s;
  if (samples.empty()) return s;
  std::vector<double> delays;
  delays.reserve(samples.size());
  double sum = 0;
  for (const auto& d : samples) {
    delays.push_back(d.delay.sec());
    sum += d.delay.sec();
  }
  s.count = delays.size();
  s.mean = sum / static_cast<double>(delays.size());
  double jitter_sum = 0;
  for (std::size_t i = 1; i < delays.size(); ++i) {
    jitter_sum += std::abs(delays[i] - delays[i - 1]);
  }
  if (delays.size() > 1) {
    s.jitter = jitter_sum / static_cast<double>(delays.size() - 1);
  }
  s.min = percentile(delays, 0);
  s.p50 = percentile(delays, 50);
  s.p95 = percentile(delays, 95);
  s.p99 = percentile(delays, 99);
  s.max = percentile(delays, 100);
  return s;
}

Series bin_throughput(
    const std::string& name,
    const std::vector<std::pair<double, std::uint64_t>>& arrivals,
    double bin_seconds, double t_begin, double t_end) {
  Series out(name);
  if (bin_seconds <= 0 || t_end <= t_begin) return out;
  const std::size_t bins =
      static_cast<std::size_t>(std::ceil((t_end - t_begin) / bin_seconds));
  std::vector<std::uint64_t> bytes(bins, 0);
  for (const auto& [t, b] : arrivals) {
    if (t < t_begin || t >= t_end) continue;
    bytes[static_cast<std::size_t>((t - t_begin) / bin_seconds)] += b;
  }
  for (std::size_t i = 0; i < bins; ++i) {
    const double mid = t_begin + (i + 0.5) * bin_seconds;
    out.add(mid, bytes[i] * 8.0 / bin_seconds / 1e6);
  }
  return out;
}

}  // namespace fhmip
