#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace fhmip::obs {
namespace {

// Fixed-precision rendering keeps exports byte-stable across platforms and
// locale settings ("%g" of a double is neither).
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  std::size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  ++buckets_[i];
  ++count_;
  sum_ += value;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) { return gauges_[name]; }

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(upper_bounds)))
      .first->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::format_text() const {
  std::string out;
  char line[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(line, sizeof(line), "counter %s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c.value()));
    out += line;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(line, sizeof(line), "gauge %s %lld\n", name.c_str(),
                  static_cast<long long>(g.value()));
    out += line;
  }
  for (const auto& [name, h] : histograms_) {
    out += "hist " + name + " count=" +
           std::to_string(static_cast<unsigned long long>(h.count())) +
           " sum=" + num(h.sum());
    for (std::size_t i = 0; i < h.bounds().size(); ++i)
      out += " le" + num(h.bounds()[i]) + "=" +
             std::to_string(static_cast<unsigned long long>(h.bucket_count(i)));
    out += " inf=" +
           std::to_string(static_cast<unsigned long long>(
               h.bucket_count(h.bounds().size()))) +
           "\n";
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + escape(name) + "\":" + std::to_string(c.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + escape(name) + "\":" + std::to_string(g.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + escape(name) + "\":{\"count\":" + std::to_string(h.count()) +
           ",\"sum\":" + num(h.sum()) + ",\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i) out += ",";
      out += num(h.bounds()[i]);
    }
    out += "],\"buckets\":[";
    for (std::size_t i = 0; i < h.num_buckets(); ++i) {
      if (i) out += ",";
      out += std::to_string(h.bucket_count(i));
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace fhmip::obs
