#include "obs/ledger.hpp"

#include <cstdio>

#include "sim/check.hpp"
#include "sim/simulation.hpp"

namespace fhmip::obs {

std::uint64_t LedgerSnapshot::dropped_total() const {
  std::uint64_t n = 0;
  for (int i = 0; i < kNumDropReasons; ++i) n += drops[i];
  return n;
}

std::int64_t LedgerSnapshot::in_flight() const {
  return static_cast<std::int64_t>(created) -
         static_cast<std::int64_t>(consumed) -
         static_cast<std::int64_t>(discarded) -
         static_cast<std::int64_t>(dropped_total()) -
         static_cast<std::int64_t>(in_buffer());
}

PacketLedger::PacketLedger(Simulation& sim, bool track_uids)
    : sim_(sim), track_uids_(track_uids) {
  sink_id_ =
      sim_.trace().add_sink([this](const TraceEvent& e) { on_event(e); });
}

PacketLedger::~PacketLedger() { sim_.trace().remove_sink(sink_id_); }

void PacketLedger::violation(const TraceEvent& e, const char* what) {
  ++violations_;
  [[maybe_unused]] constexpr bool packet_ledger_state_ok = false;
  FHMIP_AUDIT_MSG("obs", packet_ledger_state_ok,
                  std::string(what) + ": " + format_trace_line(e));
}

void PacketLedger::on_event(const TraceEvent& e) {
  switch (e.kind) {
    case TraceKind::kCreate: {
      ++agg_.created;
      if (!track_uids_) break;
      auto [it, inserted] = live_.emplace(e.uid, UidState::kLive);
      if (!inserted) violation(e, "uid created twice");
      break;
    }
    case TraceKind::kBufferEnter: {
      ++agg_.buffer_enters;
      if (!track_uids_) break;
      auto it = live_.find(e.uid);
      if (it == live_.end()) break;  // pre-attachment packet, untracked
      if (it->second != UidState::kLive)
        violation(e, "buffer enter while already buffered");
      it->second = UidState::kBuffered;
      break;
    }
    case TraceKind::kBufferExit: {
      ++agg_.buffer_exits;
      if (!track_uids_) break;
      auto it = live_.find(e.uid);
      if (it == live_.end()) break;
      if (it->second != UidState::kBuffered)
        violation(e, "buffer exit without matching enter");
      it->second = UidState::kLive;
      break;
    }
    case TraceKind::kLocalDeliver:
    case TraceKind::kDiscard:
    case TraceKind::kDrop: {
      if (e.kind == TraceKind::kLocalDeliver) {
        ++agg_.consumed;
      } else if (e.kind == TraceKind::kDiscard) {
        ++agg_.discarded;
      } else {
        if (!e.reason.has_value()) {
          violation(e, "drop without a reason");
          break;
        }
        int r = static_cast<int>(*e.reason);
        if (r < 0 || r >= kNumDropReasons) {
          violation(e, "drop with out-of-range reason");
          break;
        }
        ++agg_.drops[r];
      }
      if (!track_uids_) break;
      auto it = live_.find(e.uid);
      if (it == live_.end()) break;
      if (it->second == UidState::kBuffered)
        violation(e, "terminal event while buffered (missing buffer exit)");
      live_.erase(it);
      break;
    }
    case TraceKind::kTransmit:
    case TraceKind::kDeliver:
    case TraceKind::kForward:
      break;  // movement, not a ledger transition
  }
}

bool PacketLedger::balanced() const {
  return violations_ == 0 && agg_.buffer_exits <= agg_.buffer_enters &&
         agg_.in_flight() >= 0;
}

void PacketLedger::audit(const char* where) const {
  FHMIP_AUDIT_MSG("obs", balanced(),
                  std::string("packet ledger unbalanced at ") + where + "\n" +
                      format());
}

void PacketLedger::audit_final(const char* where) const {
  FHMIP_AUDIT_MSG(
      "obs", balanced() && in_flight() == 0 && in_buffer() == 0,
      std::string("packet ledger not fully drained at ") + where + "\n" +
          format());
}

std::string PacketLedger::format() const {
  char line[96];
  std::string out;
  auto add = [&](const char* name, long long v) {
    std::snprintf(line, sizeof(line), "  %-22s %lld\n", name, v);
    out += line;
  };
  add("created", static_cast<long long>(agg_.created));
  add("consumed", static_cast<long long>(agg_.consumed));
  add("discarded", static_cast<long long>(agg_.discarded));
  add("dropped", static_cast<long long>(agg_.dropped_total()));
  for (int i = 0; i < kNumDropReasons; ++i) {
    if (agg_.drops[i] == 0) continue;
    std::string name = std::string("  drop/") +
                       to_string(static_cast<DropReason>(i));
    add(name.c_str(), static_cast<long long>(agg_.drops[i]));
  }
  add("in_buffer", static_cast<long long>(agg_.in_buffer()));
  add("in_flight", static_cast<long long>(agg_.in_flight()));
  add("violations", static_cast<long long>(violations_));
  return out;
}

}  // namespace fhmip::obs
