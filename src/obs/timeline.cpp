#include "obs/timeline.hpp"

#include <cstdio>

#include "obs/metrics.hpp"

namespace fhmip::obs {
namespace {

// Millisecond buckets covering sub-ms control RTTs up to multi-second
// outage tails; values beyond 5 s land in the overflow bucket.
std::vector<double> phase_bounds_ms() {
  return {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000};
}

}  // namespace

const char* to_string(HoEventKind kind) {
  switch (kind) {
    case HoEventKind::kL2Trigger:
      return "l2-trigger";
    case HoEventKind::kRtSolPrSent:
      return "rtsolpr-sent";
    case HoEventKind::kPrRtAdvRecv:
      return "prrtadv-recv";
    case HoEventKind::kHiSent:
      return "hi-sent";
    case HoEventKind::kHackRecv:
      return "hack-recv";
    case HoEventKind::kFbuSent:
      return "fbu-sent";
    case HoEventKind::kReactiveFbuSent:
      return "reactive-fbu-sent";
    case HoEventKind::kFbackRecv:
      return "fback-recv";
    case HoEventKind::kFnaSent:
      return "fna-sent";
    case HoEventKind::kBiSent:
      return "bi-sent";
    case HoEventKind::kBaRecv:
      return "ba-recv";
    case HoEventKind::kBfSent:
      return "bf-sent";
    case HoEventKind::kBlackoutStart:
      return "blackout-start";
    case HoEventKind::kBlackoutEnd:
      return "blackout-end";
    case HoEventKind::kBufferFill:
      return "buffer-fill";
    case HoEventKind::kDrainStart:
      return "drain-start";
    case HoEventKind::kDrainEnd:
      return "drain-end";
    case HoEventKind::kResolved:
      return "resolved";
    case HoEventKind::kBufferGrant:
      return "buffer-grant";
    case HoEventKind::kBufferShrink:
      return "buffer-shrink";
    case HoEventKind::kBufferDeny:
      return "buffer-deny";
    case HoEventKind::kWatchdogFired:
      return "watchdog-fired";
  }
  return "?";
}

void HandoverTimeline::set_registry(MetricsRegistry* registry) {
  registry_ = registry;
  if (registry_ == nullptr) return;
  registry_->histogram("handover/phase/anticipation_ms", phase_bounds_ms());
  registry_->histogram("handover/phase/fbu_fback_ms", phase_bounds_ms());
  registry_->histogram("handover/phase/blackout_ms", phase_bounds_ms());
  registry_->histogram("handover/phase/total_ms", phase_bounds_ms());
  registry_->counter("handover/outcome/predictive");
  registry_->counter("handover/outcome/reactive");
  registry_->counter("handover/outcome/failed");
}

HandoverTimeline::OpenAttempt& HandoverTimeline::open_for(SimTime at,
                                                          MhId mh) {
  OpenAttempt& a = open_[mh];
  if (!a.open) {
    a = OpenAttempt{};
    a.open = true;
    a.ordinal = ++next_ordinal_[mh];
    a.started = at;
  }
  return a;
}

void HandoverTimeline::record(SimTime at, MhId mh, HoEventKind kind,
                              const std::string& where) {
  // Events that can only belong to an attempt open one; bookkeeping events
  // outside any attempt (e.g. a drain tail after resolution) record with
  // attempt ordinal 0.
  std::uint32_t ordinal = 0;
  bool opens = false;
  switch (kind) {
    case HoEventKind::kL2Trigger:
    case HoEventKind::kRtSolPrSent:
    case HoEventKind::kBlackoutStart:
      opens = true;
      break;
    default:
      break;
  }
  auto it = open_.find(mh);
  if (opens || (it != open_.end() && it->second.open)) {
    OpenAttempt& a = open_for(at, mh);
    ordinal = a.ordinal;
    switch (kind) {
      case HoEventKind::kL2Trigger:
        if (!a.saw_trigger) {
          a.saw_trigger = true;
          a.trigger_at = at;
        }
        break;
      case HoEventKind::kPrRtAdvRecv:
        if (a.saw_trigger && !a.phases.has_anticipation) {
          a.phases.anticipation = at - a.trigger_at;
          a.phases.has_anticipation = true;
        }
        break;
      case HoEventKind::kFbuSent:
      case HoEventKind::kReactiveFbuSent:
        if (!a.saw_fbu) {
          a.saw_fbu = true;
          a.fbu_at = at;
        }
        break;
      case HoEventKind::kFbackRecv:
        if (a.saw_fbu && !a.phases.has_fbu_fback) {
          a.phases.fbu_fback = at - a.fbu_at;
          a.phases.has_fbu_fback = true;
        }
        break;
      case HoEventKind::kBlackoutStart:
        a.saw_detach = true;
        a.detach_at = at;
        break;
      case HoEventKind::kBlackoutEnd:
        if (a.saw_detach && !a.phases.has_blackout) {
          a.phases.blackout = at - a.detach_at;
          a.phases.has_blackout = true;
        }
        break;
      default:
        break;
    }
  }
  append_record({at, mh, kind, where, ordinal});
}

void HandoverTimeline::append_record(HoEventRecord&& r) {
  records_.push_back(std::move(r));
  if (record_cap_ > 0 && records_.size() > 2 * record_cap_) {
    const std::size_t drop = records_.size() - record_cap_;
    records_.erase(records_.begin(),
                   records_.begin() + static_cast<std::ptrdiff_t>(drop));
    dropped_records_ += drop;
  }
}

PhaseBreakdown HandoverTimeline::resolve(SimTime at, MhId mh,
                                         HandoverOutcome outcome,
                                         HandoverCause cause) {
  OpenAttempt& a = open_for(at, mh);
  a.phases.total = at - a.started;
  a.phases.has_total = true;
  append_record({at, mh, HoEventKind::kResolved, to_string(outcome),
                 a.ordinal});

  HoAttempt done;
  done.mh = mh;
  done.ordinal = a.ordinal;
  done.started = a.started;
  done.resolved = at;
  done.outcome = outcome;
  done.cause = cause;
  done.phases = a.phases;
  attempts_.push_back(done);
  a.open = false;

  if (registry_ != nullptr) {
    const PhaseBreakdown& p = done.phases;
    if (p.has_anticipation)
      registry_->histogram("handover/phase/anticipation_ms", {})
          .observe(p.anticipation.millis_f());
    if (p.has_fbu_fback)
      registry_->histogram("handover/phase/fbu_fback_ms", {})
          .observe(p.fbu_fback.millis_f());
    if (p.has_blackout)
      registry_->histogram("handover/phase/blackout_ms", {})
          .observe(p.blackout.millis_f());
    registry_->histogram("handover/phase/total_ms", {})
        .observe(p.total.millis_f());
    registry_->counter(std::string("handover/outcome/") + to_string(outcome))
        .inc();
  }
  if (resolve_hook_) resolve_hook_(done);
  return done.phases;
}

std::vector<HoAttempt> HandoverTimeline::attempts_for(MhId mh) const {
  std::vector<HoAttempt> out;
  for (const auto& a : attempts_)
    if (a.mh == mh) out.push_back(a);
  return out;
}

std::string HandoverTimeline::format_timeline() const {
  std::string out;
  char line[192];
  for (const auto& r : records_) {
    std::snprintf(line, sizeof(line), "T %.6f mh %u a%u %s @%s\n", r.at.sec(),
                  r.mh, r.attempt, to_string(r.kind), r.where.c_str());
    out += line;
  }
  return out;
}

}  // namespace fhmip::obs
