#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "stats/handover_outcomes.hpp"

namespace fhmip::obs {

class MetricsRegistry;

/// Typed control-plane event kinds recorded on the handover timeline. One
/// record per protocol step, so the full choreography of an attempt can be
/// replayed and rendered (golden-trace tests) and per-phase latencies can be
/// derived without parsing log strings.
enum class HoEventKind : std::uint8_t {
  kL2Trigger,     // radio anticipates a handoff (MH)
  kRtSolPrSent,   // MH -> PAR solicitation
  kPrRtAdvRecv,   // PAR advertisement reached the MH
  kHiSent,        // PAR -> NAR handover initiate (carries BR)
  kHackRecv,      // NAR HAck (carries BA) reached the PAR
  kFbuSent,       // MH fast binding update (old link, predictive)
  kReactiveFbuSent,  // MH fast binding update via the new link (§2.3.2)
  kFbackRecv,     // FBack reached the MH
  kFnaSent,       // MH -> NAR fast neighbour advertisement
  kBiSent,        // standalone buffer-initiate (smooth-handover baseline)
  kBaRecv,        // standalone buffer-acknowledge
  kBfSent,        // buffer-flush toward the serving AR
  kBlackoutStart,  // L2 detach: the radio left the old AP
  kBlackoutEnd,    // L2 attach: the radio joined the new AP
  kBufferFill,     // first packet parked in a handoff buffer for this MH
  kDrainStart,     // an AR began releasing a buffer toward the MH
  kDrainEnd,       // that buffer ran empty
  kResolved,       // attempt classified (predictive/reactive/failed)
  kBufferGrant,    // a router granted the full requested buffer space
  kBufferShrink,   // partial grant: pool pressure shrank the request
  kBufferDeny,     // request refused outright (zero grant)
  kWatchdogFired,  // the MH's per-attempt liveness deadline expired
};

const char* to_string(HoEventKind kind);

struct HoEventRecord {
  SimTime at;
  MhId mh = kNoNode;
  HoEventKind kind = HoEventKind::kL2Trigger;
  std::string where;       // node that observed the event ("mh1", "par", ...)
  std::uint32_t attempt = 0;  // 1-based per-MH attempt ordinal (0 = between
                              // attempts, e.g. a stray drain)
};

/// A closed handover attempt with its event span and derived phase latencies.
struct HoAttempt {
  MhId mh = kNoNode;
  std::uint32_t ordinal = 0;  // 1-based per MH
  SimTime started;
  SimTime resolved;
  HandoverOutcome outcome = HandoverOutcome::kPredictive;
  HandoverCause cause = HandoverCause::kNone;
  PhaseBreakdown phases;
};

/// Handover timeline tracer, owned by the Simulation next to the packet
/// trace. Agents record protocol steps as they execute them; the timeline
/// groups records into per-MH attempts (opened by the first trigger/detach/
/// solicitation, closed by `resolve`) and derives the per-phase latency
/// breakdown that feeds stats/handover_outcomes and the
/// `handover/phase/*_ms` histograms of the metrics registry. Event volume is
/// control-plane rate (a handful of records per handover), so the timeline
/// is always on.
class HandoverTimeline {
 public:
  using ResolveHook = std::function<void(const HoAttempt&)>;

  /// Registers the `handover/phase/*_ms` histograms and outcome counters.
  void set_registry(MetricsRegistry* registry);
  /// Bounds the raw record log: with a cap (> 0) only the most recent
  /// `cap` records are kept (amortized — the log grows to 2*cap, then the
  /// oldest half is trimmed in one move), and `dropped_records()` counts
  /// the discarded prefix. Zero (the default) keeps everything. Long
  /// population runs set a cap so timeline memory stays flat; the derived
  /// attempts/metrics are unaffected — only `records()`/`format_timeline()`
  /// lose their oldest entries.
  void set_record_cap(std::size_t cap) { record_cap_ = cap; }
  std::size_t record_cap() const { return record_cap_; }
  std::uint64_t dropped_records() const { return dropped_records_; }
  /// Invoked after every attempt closes — property tests use this to check
  /// ledger conservation at each handover boundary.
  void set_resolve_hook(ResolveHook hook) { resolve_hook_ = std::move(hook); }

  /// Appends a record; opens a new attempt for `mh` when none is in flight.
  void record(SimTime at, MhId mh, HoEventKind kind, const std::string& where);

  /// Closes the in-flight attempt for `mh` (opening and closing one if none
  /// is, so unanticipated reattachments still count) and returns its derived
  /// phase breakdown.
  PhaseBreakdown resolve(SimTime at, MhId mh, HandoverOutcome outcome,
                         HandoverCause cause);

  const std::vector<HoEventRecord>& records() const { return records_; }
  const std::vector<HoAttempt>& attempts() const { return attempts_; }
  /// Attempts resolved for one MH, in resolution order.
  std::vector<HoAttempt> attempts_for(MhId mh) const;

  /// Deterministic one-line-per-record rendering:
  ///   "T 2.200000 mh 100 a1 fbu-sent @mh1".
  std::string format_timeline() const;

 private:
  struct OpenAttempt {
    std::uint32_t ordinal = 0;
    SimTime started;
    bool open = false;
    // Phase anchors (valid when the matching `saw_` flag is set).
    SimTime trigger_at, fbu_at, detach_at;
    bool saw_trigger = false, saw_fbu = false, saw_detach = false;
    PhaseBreakdown phases;
  };

  OpenAttempt& open_for(SimTime at, MhId mh);
  void append_record(HoEventRecord&& r);

  std::vector<HoEventRecord> records_;
  std::size_t record_cap_ = 0;
  std::uint64_t dropped_records_ = 0;
  std::vector<HoAttempt> attempts_;
  std::map<MhId, OpenAttempt> open_;
  std::map<MhId, std::uint32_t> next_ordinal_;
  MetricsRegistry* registry_ = nullptr;
  ResolveHook resolve_hook_;
};

}  // namespace fhmip::obs
