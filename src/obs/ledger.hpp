#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace fhmip {
class Simulation;
}

namespace fhmip::obs {

/// Aggregate view of the ledger at one instant.
struct LedgerSnapshot {
  std::uint64_t created = 0;
  std::uint64_t consumed = 0;   // kLocalDeliver
  std::uint64_t discarded = 0;  // kDiscard (flow-less control teardown)
  std::uint64_t buffer_enters = 0;
  std::uint64_t buffer_exits = 0;
  std::uint64_t drops[kNumDropReasons] = {};

  std::uint64_t dropped_total() const;
  std::uint64_t in_buffer() const { return buffer_enters - buffer_exits; }
  /// created = consumed + discarded + dropped + in_buffer + in_flight.
  std::int64_t in_flight() const;
};

/// Packet conservation ledger: a PacketTrace sink that proves
///   created == delivered + dropped-by-reason + in-buffer + in-flight
/// at any sim time and at teardown. Attach it before traffic starts (it
/// counts only events it observes). With `track_uids` (the default) it also
/// runs a per-uid state machine — create-once, buffer enter/exit pairing,
/// exactly one terminal event per packet — and any violation is fatal under
/// FHMIP_AUDIT_LEVEL >= 1 as well as counted for audit-level-0 builds.
class PacketLedger {
 public:
  explicit PacketLedger(Simulation& sim, bool track_uids = true);
  ~PacketLedger();
  PacketLedger(const PacketLedger&) = delete;
  PacketLedger& operator=(const PacketLedger&) = delete;

  LedgerSnapshot snapshot() const { return agg_; }
  std::uint64_t created() const { return agg_.created; }
  std::uint64_t consumed() const { return agg_.consumed; }
  std::uint64_t discarded() const { return agg_.discarded; }
  std::uint64_t dropped(DropReason reason) const {
    return agg_.drops[static_cast<int>(reason)];
  }
  std::uint64_t dropped_total() const { return agg_.dropped_total(); }
  std::uint64_t in_buffer() const { return agg_.in_buffer(); }
  std::int64_t in_flight() const { return agg_.in_flight(); }

  /// Per-uid state machine violations observed so far (0 when healthy or
  /// when track_uids is off).
  std::uint64_t violations() const { return violations_; }

  /// The conservation identity holds with non-negative remainders and no
  /// per-uid violations.
  bool balanced() const;

  /// FHMIP_AUDIT that `balanced()`; `where` tags the check site.
  void audit(const char* where) const;
  /// Teardown audit: balanced, no per-uid violations, and nothing left in
  /// flight or buffered — every created packet reached a terminal event.
  void audit_final(const char* where) const;

  /// Sorted multi-line summary ("created 100\n  consumed 90\n...").
  std::string format() const;

 private:
  enum class UidState : std::uint8_t { kLive, kBuffered };

  void on_event(const TraceEvent& e);
  void violation(const TraceEvent& e, const char* what);

  Simulation& sim_;
  PacketTrace::SinkId sink_id_ = PacketTrace::kNoSink;
  LedgerSnapshot agg_;
  bool track_uids_;
  std::map<std::uint64_t, UidState> live_;
  std::uint64_t violations_ = 0;
};

}  // namespace fhmip::obs
