#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "sim/trace.hpp"

namespace fhmip {
class Simulation;
}

namespace fhmip::obs {

/// A PacketTrace sink that renders events through `format_trace_line` into a
/// file, optionally through a filter predicate (e.g. control messages only).
/// Attaches on construction, flushes and detaches on destruction — the
/// ns-2 "trace file" affordance, rebuilt on the multi-sink trace hub.
class TraceFileWriter {
 public:
  using Filter = std::function<bool(const TraceEvent&)>;

  /// Opens `path` for writing (truncating). An empty filter accepts every
  /// event. Throws std::runtime_error when the file cannot be opened.
  TraceFileWriter(Simulation& sim, const std::string& path,
                  Filter filter = {});
  ~TraceFileWriter();
  TraceFileWriter(const TraceFileWriter&) = delete;
  TraceFileWriter& operator=(const TraceFileWriter&) = delete;

  std::uint64_t lines_written() const { return lines_; }
  const std::string& path() const { return path_; }

 private:
  void on_event(const TraceEvent& e);

  Simulation& sim_;
  std::string path_;
  Filter filter_;
  std::FILE* file_ = nullptr;
  PacketTrace::SinkId sink_id_ = PacketTrace::kNoSink;
  std::uint64_t lines_ = 0;
};

}  // namespace fhmip::obs
