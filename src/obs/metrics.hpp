#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fhmip::obs {

/// A monotonically increasing event count. Components resolve the reference
/// once (via MetricsRegistry::counter) and increment through it — the hot
/// path is a single integer add, no lookup.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A point-in-time level (queue depth, buffered packets, leased buffers).
class Gauge {
 public:
  void set(std::int64_t v) { value_ = v; }
  void add(std::int64_t delta) { value_ += delta; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// A fixed-bucket histogram. Bucket `i` counts observations with
/// `value <= bounds[i]` (first matching bucket, so a value exactly on an
/// upper bound lands in that bucket); values above the last bound land in
/// the overflow bucket. Bounds are sorted at construction.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// i in [0, bounds().size()]; the last index is the overflow bucket.
  std::uint64_t bucket_count(std::size_t i) const { return buckets_[i]; }
  std::size_t num_buckets() const { return buckets_.size(); }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;  // bounds_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Named metrics for one Simulation. Registration returns a stable reference
/// (node-based std::map storage) so instrumented components pay no lookup on
/// the hot path. Re-registering a name returns the existing metric, so
/// several components may share one series. Exports iterate the sorted maps,
/// making the text and JSON renderings deterministic for a deterministic
/// run — byte-identical across repeats and across sweep --jobs counts.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Re-registration ignores `upper_bounds` and returns the existing series.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  /// Lookup without creating; nullptr when the name was never registered.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// One metric per line, name-sorted within each kind:
  ///   "counter link/par>nar/delivered_pkts 42".
  std::string format_text() const;
  /// Compact single-line JSON object with "counters"/"gauges"/"histograms"
  /// keys, name-sorted; safe to embed verbatim in the sweep report.
  std::string to_json() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace fhmip::obs
