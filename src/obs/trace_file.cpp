#include "obs/trace_file.hpp"

#include <stdexcept>
#include <utility>

#include "sim/simulation.hpp"

namespace fhmip::obs {

TraceFileWriter::TraceFileWriter(Simulation& sim, const std::string& path,
                                 Filter filter)
    : sim_(sim), path_(path), filter_(std::move(filter)) {
  file_ = std::fopen(path_.c_str(), "w");
  if (file_ == nullptr)
    throw std::runtime_error("TraceFileWriter: cannot open " + path_);
  sink_id_ =
      sim_.trace().add_sink([this](const TraceEvent& e) { on_event(e); });
}

TraceFileWriter::~TraceFileWriter() {
  sim_.trace().remove_sink(sink_id_);
  if (file_ != nullptr) std::fclose(file_);
}

void TraceFileWriter::on_event(const TraceEvent& e) {
  if (filter_ && !filter_(e)) return;
  std::string line = format_trace_line(e);
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), file_);
  ++lines_;
}

}  // namespace fhmip::obs
