#pragma once

#include <cstdint>
#include <vector>

#include "fastho/ar_agent.hpp"
#include "sim/simulation.hpp"

namespace fhmip::fault {

/// Crash/restart fault for an access-router agent.
///
/// A crash calls ArAgent::fault_reset(): every in-memory handover context —
/// negotiated grants, PCoA host routes, pending protocol timers, and all
/// buffered packets — is lost (the packets are accounted as kFaultInjected
/// drops, so conservation checks still balance). The restart is modeled as
/// immediate (a watchdog respawn): the agent keeps serving, its link-layer
/// attachment table re-synced from the access points. Pair with
/// LinkFaultInjector::down_window on the router's wired link to model a
/// longer outage.
class AgentCrashInjector {
 public:
  AgentCrashInjector(Simulation& sim, ArAgent& agent)
      : sim_(sim),
        agent_(agent),
        m_crashes_(&sim.metrics().counter("fault/agent_crashes")) {}

  ~AgentCrashInjector() {
    for (EventId id : pending_) sim_.cancel(id);
  }

  /// Crashes the agent immediately.
  void crash_now() {
    ++crashes_;
    m_crashes_->inc();
    agent_.fault_reset();
  }

  /// Schedules a crash at absolute simulation time `at`.
  void crash_at(SimTime at) {
    pending_.push_back(sim_.at(at, [this] { crash_now(); }));
  }

  std::uint64_t crashes() const { return crashes_; }
  ArAgent& agent() { return agent_; }

 private:
  Simulation& sim_;
  ArAgent& agent_;
  obs::Counter* m_crashes_;  // fault/agent_crashes (shared across injectors)
  std::uint64_t crashes_ = 0;
  std::vector<EventId> pending_;  // scheduled crashes, cancelled on death
};

}  // namespace fhmip::fault
