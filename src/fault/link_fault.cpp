#include "fault/link_fault.hpp"

#include <utility>

namespace fhmip::fault {

LinkFaultInjector::LinkFaultInjector(Simulation& sim, SimplexLink& link)
    : sim_(sim), link_(link) {
  m_dropped_ = &sim_.metrics().counter("fault/injected_drops");
  link_.set_tx_filter([this](const Packet& p) { return should_drop(p); });
}

LinkFaultInjector::~LinkFaultInjector() {
  link_.set_tx_filter({});
  for (EventId ev : pending_evs_) sim_.cancel(ev);
  for (Held& h : held_) sim_.cancel(h.fallback);
}

void LinkFaultInjector::drop_nth(std::uint64_t n, PacketPredicate match) {
  Rule r;
  r.kind = Rule::Kind::kNth;
  r.match = std::move(match);
  r.n = n;
  r.spent = n == 0;
  rules_.push_back(std::move(r));
}

void LinkFaultInjector::drop_matching(PacketPredicate match,
                                      std::uint64_t count) {
  Rule r;
  r.kind = Rule::Kind::kMatching;
  r.match = std::move(match);
  r.remaining = count;
  r.unlimited = count == 0;
  rules_.push_back(std::move(r));
}

void LinkFaultInjector::bernoulli(double p, std::uint64_t seed,
                                  PacketPredicate match) {
  Rule r;
  r.kind = Rule::Kind::kBernoulli;
  r.match = std::move(match);
  r.p = p;
  r.rng.reseed(seed);
  rules_.push_back(std::move(r));
}

void LinkFaultInjector::duplicate_nth(std::uint64_t n, PacketPredicate match,
                                      SimTime gap) {
  Rule r;
  r.kind = Rule::Kind::kDuplicate;
  r.match = std::move(match);
  r.n = n;
  r.spent = n == 0;
  r.delay = gap;
  rules_.push_back(std::move(r));
}

void LinkFaultInjector::delay_nth(std::uint64_t n, SimTime delay,
                                  PacketPredicate match) {
  Rule r;
  r.kind = Rule::Kind::kDelay;
  r.match = std::move(match);
  r.n = n;
  r.spent = n == 0;
  r.delay = delay;
  rules_.push_back(std::move(r));
}

void LinkFaultInjector::reorder_nth(std::uint64_t n, PacketPredicate match,
                                    SimTime max_hold) {
  Rule r;
  r.kind = Rule::Kind::kReorder;
  r.match = std::move(match);
  r.n = n;
  r.spent = n == 0;
  r.delay = max_hold;
  rules_.push_back(std::move(r));
}

void LinkFaultInjector::down_window(SimTime from, SimTime until) {
  SimplexLink* link = &link_;
  sim_.at(from, [link] { link->set_up(false); });
  sim_.at(until, [link] { link->set_up(true); });
}

bool LinkFaultInjector::should_drop(const Packet& p) {
  // Copies we injected ourselves are exempt from rule processing, so a
  // duplicate can't be re-duplicated and a delayed copy can't be re-delayed.
  if (passthrough_.erase(p.uid) > 0) {
    release_held();
    return false;
  }
  for (Rule& r : rules_) {
    if (r.spent) continue;
    if (r.match && !r.match(p)) continue;
    switch (r.kind) {
      case Rule::Kind::kNth:
        if (++r.seen == r.n) {
          r.spent = true;
          ++dropped_;
          m_dropped_->inc();
          return true;
        }
        break;
      case Rule::Kind::kMatching:
        if (r.unlimited) {
          ++dropped_;
          m_dropped_->inc();
          return true;
        }
        if (r.remaining > 0) {
          if (--r.remaining == 0) r.spent = true;
          ++dropped_;
          m_dropped_->inc();
          return true;
        }
        r.spent = true;
        break;
      case Rule::Kind::kBernoulli:
        // The private stream advances once per matching packet, so drops
        // are a pure function of (seed, matching-packet index).
        if (r.rng.chance(r.p)) {
          ++dropped_;
          m_dropped_->inc();
          return true;
        }
        break;
      case Rule::Kind::kDuplicate:
        if (++r.seen == r.n) {
          r.spent = true;
          ++duplicated_;
          schedule_copy(p, r.delay);
          release_held();
          return false;  // the original goes through untouched
        }
        break;
      case Rule::Kind::kDelay:
        if (++r.seen == r.n) {
          r.spent = true;
          ++delayed_;
          ++dropped_;
          m_dropped_->inc();
          schedule_copy(p, r.delay);
          return true;  // the original dies; its copy arrives late
        }
        break;
      case Rule::Kind::kReorder:
        if (++r.seen == r.n) {
          r.spent = true;
          ++reordered_;
          ++dropped_;
          m_dropped_->inc();
          hold_copy(p, r.delay);
          return true;  // the copy re-enters behind the next passer
        }
        break;
    }
  }
  release_held();
  return false;
}

void LinkFaultInjector::schedule_copy(const Packet& p, SimTime after) {
  // shared_ptr adopts the clone's pool-aware deleter, so the slot is
  // returned to the pool whichever event frees the copy last.
  auto copy = std::shared_ptr<Packet>(p.clone(sim_.next_uid()));
  pending_evs_.push_back(
      sim_.in(after, [this, copy] { inject(copy); }));
}

void LinkFaultInjector::hold_copy(const Packet& p, SimTime max_hold) {
  Held h;
  h.copy = std::shared_ptr<Packet>(p.clone(sim_.next_uid()));
  // Bound the wait: with no successor traffic the copy still arrives, just
  // late — a reorder degrades to a delay instead of a silent loss.
  const std::uint64_t uid = h.copy->uid;
  h.fallback = sim_.in(max_hold, [this, uid] {
    for (auto it = held_.begin(); it != held_.end(); ++it) {
      if (it->copy->uid != uid) continue;
      std::shared_ptr<Packet> copy = it->copy;
      held_.erase(it);
      inject(copy);
      return;
    }
  });
  held_.push_back(std::move(h));
}

void LinkFaultInjector::release_held() {
  if (held_.empty()) return;
  // Inject after the passing packet has entered the link (we are inside its
  // transmit call right now), i.e. on the next scheduler slot.
  for (Held& h : held_) {
    sim_.cancel(h.fallback);
    pending_evs_.push_back(
        sim_.in(SimTime(), [this, copy = h.copy] { inject(copy); }));
  }
  held_.clear();
}

void LinkFaultInjector::inject(const std::shared_ptr<Packet>& copy) {
  // Re-home the payload into a fresh pool slot; `copy` (which other
  // capture contexts may still reference) is left scrubbed but valid.
  PacketPtr p = sim_.packet_pool().acquire();
  static_cast<PacketFields&>(*p) = std::move(static_cast<PacketFields&>(*copy));
  passthrough_.insert(p->uid);
  // The copy is a new packet as far as conservation accounting goes: it gets
  // its own kCreate (the ledger then expects a terminal event for it) and,
  // for data packets, a fresh flow-level "sent" so delivered+dropped can
  // still reconcile against sent.
  trace_packet(sim_, TraceKind::kCreate, "fault", *p);
  if (p->flow != kNoFlow) sim_.stats().record_sent(p->flow);
  link_.transmit(std::move(p));
}

}  // namespace fhmip::fault
