#include "fault/link_fault.hpp"

#include <utility>

namespace fhmip::fault {

LinkFaultInjector::LinkFaultInjector(Simulation& sim, SimplexLink& link)
    : sim_(sim), link_(link) {
  m_dropped_ = &sim_.metrics().counter("fault/injected_drops");
  link_.set_tx_filter([this](const Packet& p) { return should_drop(p); });
}

LinkFaultInjector::~LinkFaultInjector() { link_.set_tx_filter({}); }

void LinkFaultInjector::drop_nth(std::uint64_t n, PacketPredicate match) {
  Rule r;
  r.kind = Rule::Kind::kNth;
  r.match = std::move(match);
  r.n = n;
  r.spent = n == 0;
  rules_.push_back(std::move(r));
}

void LinkFaultInjector::drop_matching(PacketPredicate match,
                                      std::uint64_t count) {
  Rule r;
  r.kind = Rule::Kind::kMatching;
  r.match = std::move(match);
  r.remaining = count;
  r.unlimited = count == 0;
  rules_.push_back(std::move(r));
}

void LinkFaultInjector::bernoulli(double p, std::uint64_t seed,
                                  PacketPredicate match) {
  Rule r;
  r.kind = Rule::Kind::kBernoulli;
  r.match = std::move(match);
  r.p = p;
  r.rng.reseed(seed);
  rules_.push_back(std::move(r));
}

void LinkFaultInjector::down_window(SimTime from, SimTime until) {
  SimplexLink* link = &link_;
  sim_.at(from, [link] { link->set_up(false); });
  sim_.at(until, [link] { link->set_up(true); });
}

bool LinkFaultInjector::should_drop(const Packet& p) {
  for (Rule& r : rules_) {
    if (r.spent) continue;
    if (r.match && !r.match(p)) continue;
    switch (r.kind) {
      case Rule::Kind::kNth:
        if (++r.seen == r.n) {
          r.spent = true;
          ++dropped_;
          m_dropped_->inc();
          return true;
        }
        break;
      case Rule::Kind::kMatching:
        if (r.unlimited) {
          ++dropped_;
          m_dropped_->inc();
          return true;
        }
        if (r.remaining > 0) {
          if (--r.remaining == 0) r.spent = true;
          ++dropped_;
          m_dropped_->inc();
          return true;
        }
        r.spent = true;
        break;
      case Rule::Kind::kBernoulli:
        // The private stream advances once per matching packet, so drops
        // are a pure function of (seed, matching-packet index).
        if (r.rng.chance(r.p)) {
          ++dropped_;
          m_dropped_->inc();
          return true;
        }
        break;
    }
  }
  return false;
}

}  // namespace fhmip::fault
