#pragma once

#include <functional>
#include <string>

#include "net/packet.hpp"

namespace fhmip::fault {

/// Packet selector for fault rules: true = the rule applies to this packet.
using PacketPredicate = std::function<bool(const Packet&)>;

inline PacketPredicate any_packet() {
  return [](const Packet&) { return true; };
}

inline PacketPredicate control_only() {
  return [](const Packet& p) { return p.is_control(); };
}

inline PacketPredicate data_only() {
  return [](const Packet& p) { return !p.is_control(); };
}

/// Matches by wire name as printed in traces ("HI", "FBU", "FNA", ...), so
/// fault scripts read like the message charts they perturb.
inline PacketPredicate message_named(std::string name) {
  return [name = std::move(name)](const Packet& p) {
    return name == message_name(p.msg);
  };
}

}  // namespace fhmip::fault
