#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "fault/filters.hpp"
#include "net/link.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"

namespace fhmip::fault {

/// Scripted, deterministic fault injection on one simplex link.
///
/// The injector installs a single transmit filter on the target link and
/// evaluates its rules in insertion order against every packet handed to
/// the link; the first rule that fires acts on the packet. Drop rules kill
/// it, accounted as a DropReason::kFaultInjected drop. Rules are
/// deterministic: the nth-match rules depend only on the offered packet
/// sequence, and the Bernoulli rule draws from its own seeded generator
/// (advanced only on matching packets), independent of the simulation-wide
/// RNG.
///
/// Beyond loss, three reordering-class faults model a misbehaving path:
///  * duplicate_nth — the packet passes AND a deep copy (fresh uid, kCreate
///    traced, flow-sent accounted) is transmitted a little later;
///  * delay_nth — the packet is killed (a fault-injected drop) and its copy
///    re-transmitted after `delay`, so the protocol sees the message late;
///  * reorder_nth — the packet is killed and its copy held until right
///    after the next packet passes the filter (or `max_hold`, whichever
///    comes first), so the two swap places on the wire.
/// Copies are injected through the link's normal transmit path and are
/// exempt from further rule processing, so faults cannot cascade.
///
/// Timed outages (down_window) reuse the link's up/down machinery, so they
/// behave exactly like a wireless blackout: queued packets die with the
/// link and in-flight packets still arrive (ns-2 semantics).
class LinkFaultInjector {
 public:
  LinkFaultInjector(Simulation& sim, SimplexLink& link);
  ~LinkFaultInjector();

  LinkFaultInjector(const LinkFaultInjector&) = delete;
  LinkFaultInjector& operator=(const LinkFaultInjector&) = delete;

  /// Drops exactly the nth (1-based) packet matching `match`, then the rule
  /// is spent.
  void drop_nth(std::uint64_t n, PacketPredicate match = any_packet());

  /// Drops every matching packet; `count` limits the rule to the first
  /// `count` matches (0 = unlimited).
  void drop_matching(PacketPredicate match, std::uint64_t count = 0);

  /// Independent seeded Bernoulli loss with probability `p` on matching
  /// packets.
  void bernoulli(double p, std::uint64_t seed,
                 PacketPredicate match = any_packet());

  /// Duplicates the nth (1-based) matching packet: the original passes and
  /// a copy follows `gap` later.
  void duplicate_nth(std::uint64_t n, PacketPredicate match = any_packet(),
                     SimTime gap = SimTime::micros(50));

  /// Delays the nth (1-based) matching packet by `delay`: the original is
  /// killed (fault-injected drop) and a copy re-transmitted late.
  void delay_nth(std::uint64_t n, SimTime delay,
                 PacketPredicate match = any_packet());

  /// Reorders the nth (1-based) matching packet behind the next packet
  /// that passes the filter; `max_hold` bounds the wait when no successor
  /// shows up.
  void reorder_nth(std::uint64_t n, PacketPredicate match = any_packet(),
                   SimTime max_hold = SimTime::millis(50));

  /// Takes the link down at `from` and back up at `until`. Both edges are
  /// scheduled immediately; windows may overlap other rules.
  void down_window(SimTime from, SimTime until);

  /// Removes every rule (the window events already scheduled still fire).
  void clear() { rules_.clear(); }

  /// Packets this injector has killed so far (delay/reorder originals
  /// count: they die on the wire even though a copy follows).
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t duplicated() const { return duplicated_; }
  std::uint64_t delayed() const { return delayed_; }
  std::uint64_t reordered() const { return reordered_; }

  SimplexLink& link() { return link_; }

 private:
  struct Rule {
    enum class Kind {
      kNth,
      kMatching,
      kBernoulli,
      kDuplicate,
      kDelay,
      kReorder,
    };
    Kind kind = Kind::kMatching;
    PacketPredicate match;
    std::uint64_t n = 0;          // nth-match rules: which match fires
    std::uint64_t seen = 0;       // nth-match rules: matches observed
    std::uint64_t remaining = 0;  // kMatching: budget (if not unlimited)
    bool unlimited = false;
    double p = 0.0;               // kBernoulli
    Rng rng;                      // kBernoulli: private seeded stream
    SimTime delay;                // kDuplicate gap / kDelay / kReorder hold
    bool spent = false;
  };
  struct Held {
    std::shared_ptr<Packet> copy;
    EventId fallback = kInvalidEvent;
  };

  bool should_drop(const Packet& p);
  /// Schedules a deep copy of `p` for (re-)transmission `after` from now.
  void schedule_copy(const Packet& p, SimTime after);
  /// Parks a copy of `p` until the next passing packet or `max_hold`.
  void hold_copy(const Packet& p, SimTime max_hold);
  /// Re-injects every held copy (a packet just passed the filter).
  void release_held();
  /// Puts a copy on the wire: fresh kCreate trace, flow-sent accounting,
  /// and a passthrough mark so rules never process it again.
  void inject(const std::shared_ptr<Packet>& copy);

  Simulation& sim_;
  SimplexLink& link_;
  std::vector<Rule> rules_;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t delayed_ = 0;
  std::uint64_t reordered_ = 0;
  std::set<std::uint64_t> passthrough_;  // uids of injected copies
  std::vector<Held> held_;
  std::vector<EventId> pending_evs_;  // cancelled in the dtor
  obs::Counter* m_dropped_ = nullptr;  // fault/injected_drops (shared name)
};

}  // namespace fhmip::fault
