#pragma once

#include <cstdint>
#include <vector>

#include "fault/filters.hpp"
#include "net/link.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"

namespace fhmip::fault {

/// Scripted, deterministic fault injection on one simplex link.
///
/// The injector installs a single transmit filter on the target link and
/// evaluates its rules in insertion order against every packet handed to
/// the link; the first rule that fires kills the packet, accounted as a
/// DropReason::kFaultInjected drop. Rules are deterministic: drop-nth and
/// drop-matching depend only on the offered packet sequence, and the
/// Bernoulli rule draws from its own seeded generator (advanced only on
/// matching packets), independent of the simulation-wide RNG.
///
/// Timed outages (down_window) reuse the link's up/down machinery, so they
/// behave exactly like a wireless blackout: queued packets die with the
/// link and in-flight packets still arrive (ns-2 semantics).
class LinkFaultInjector {
 public:
  LinkFaultInjector(Simulation& sim, SimplexLink& link);
  ~LinkFaultInjector();

  LinkFaultInjector(const LinkFaultInjector&) = delete;
  LinkFaultInjector& operator=(const LinkFaultInjector&) = delete;

  /// Drops exactly the nth (1-based) packet matching `match`, then the rule
  /// is spent.
  void drop_nth(std::uint64_t n, PacketPredicate match = any_packet());

  /// Drops every matching packet; `count` limits the rule to the first
  /// `count` matches (0 = unlimited).
  void drop_matching(PacketPredicate match, std::uint64_t count = 0);

  /// Independent seeded Bernoulli loss with probability `p` on matching
  /// packets.
  void bernoulli(double p, std::uint64_t seed,
                 PacketPredicate match = any_packet());

  /// Takes the link down at `from` and back up at `until`. Both edges are
  /// scheduled immediately; windows may overlap other rules.
  void down_window(SimTime from, SimTime until);

  /// Removes every rule (the window events already scheduled still fire).
  void clear() { rules_.clear(); }

  /// Packets this injector has killed so far.
  std::uint64_t dropped() const { return dropped_; }

  SimplexLink& link() { return link_; }

 private:
  struct Rule {
    enum class Kind { kNth, kMatching, kBernoulli };
    Kind kind = Kind::kMatching;
    PacketPredicate match;
    std::uint64_t n = 0;          // kNth: which match to kill
    std::uint64_t seen = 0;       // kNth: matches observed so far
    std::uint64_t remaining = 0;  // kMatching: budget (if not unlimited)
    bool unlimited = false;
    double p = 0.0;               // kBernoulli
    Rng rng;                      // kBernoulli: private seeded stream
    bool spent = false;
  };

  bool should_drop(const Packet& p);

  Simulation& sim_;
  SimplexLink& link_;
  std::vector<Rule> rules_;
  std::uint64_t dropped_ = 0;
  obs::Counter* m_dropped_ = nullptr;  // fault/injected_drops (shared name)
};

}  // namespace fhmip::fault
