#include "fastho/reliability.hpp"

namespace fhmip {

SimTime RetransmitPolicy::timeout_for(std::uint32_t attempt) const {
  double scale = 1.0;
  for (std::uint32_t i = 0; i < attempt; ++i) scale *= backoff;
  return SimTime::from_seconds(rto.sec() * scale);
}

}  // namespace fhmip
