#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "buffer/buffer_manager.hpp"
#include "buffer/policy.hpp"
#include "buffer/rate_estimator.hpp"
#include "fastho/auth.hpp"
#include "fastho/messages.hpp"
#include "fastho/reliability.hpp"
#include "net/node.hpp"
#include "wireless/access_point.hpp"

namespace fhmip {

/// Access Router agent implementing both sides of the Fast Handover
/// protocol with the thesis's enhanced buffer management:
///
///  * PAR role — answers RtSolPr(+BI), negotiates buffer space with the NAR
///    over HI(+BR)/HAck(+BA), redirects PCoA traffic after the FBU according
///    to the Table 3.3 policy, buffers its share, and releases on BF.
///  * NAR role — allocates the requested buffer, installs a host route for
///    the PCoA, buffers tunneled packets while the MH is detached, signals
///    Buffer Full (Case 1.b, bouncing the overflowing packet back for
///    PAR-side buffering), and drains on FNA+BF.
///  * Intra-AR role — §3.2.2.4 buffering across pure link-layer handoffs,
///    and the standalone BI/BA/BF smooth-handover baseline (§2.4).
///
/// Control-plane reliability: the HI is the only exchange this agent
/// originates; it is retransmitted with exponential backoff until the HAck
/// arrives or the retry cap is hit, at which point the PAR reports an empty
/// grant (the host falls back to the reactive path and no orphaned NAR
/// allocation exists, since allocation happens on HI receipt). Sequenced
/// control messages (RtSolPr, HI, FBU, FNA) are deduplicated per context so
/// a retransmission can only re-elicit the cached answer, never redo side
/// effects such as buffer allocation.
///
/// Counters are exposed for tests and benches.
class ArAgent : public ArAttachListener {
 public:
  struct Counters {
    std::uint64_t rtsolpr = 0;
    std::uint64_t hi_sent = 0, hi_received = 0;
    std::uint64_t hack_sent = 0, hack_received = 0;
    std::uint64_t prrtadv_sent = 0;
    std::uint64_t fbu = 0, fback_sent = 0;
    std::uint64_t fna = 0, bf_sent = 0, bf_received = 0;
    std::uint64_t fna_ack_sent = 0;
    std::uint64_t buffer_full_sent = 0, buffer_full_received = 0;
    std::uint64_t bounced = 0;
    std::uint64_t redirected = 0;
    std::uint64_t buffered_local = 0;   // stored in this AR's buffers
    std::uint64_t drained = 0;          // released toward the MH
    std::uint64_t delivered_wireless = 0;
    std::uint64_t intra_handoffs = 0;
    // Reliability layer.
    std::uint64_t hi_rtx = 0;           // HI resends
    std::uint64_t hi_exhausted = 0;     // negotiations given up
    std::uint64_t dup_rtsolpr = 0;      // deduplicated retransmissions
    std::uint64_t dup_hi = 0;
    std::uint64_t dup_hack = 0;
    std::uint64_t dup_fbu = 0;
    std::uint64_t dup_fna = 0;
    std::uint64_t crashes = 0;          // fault_reset() invocations
  };

  ArAgent(Node& node, BufferSchemeConfig cfg, RetransmitPolicy rtx = {});
  ~ArAgent() override;

  ArAgent(const ArAgent&) = delete;
  ArAgent& operator=(const ArAgent&) = delete;

  /// Resolves an access-point id to the access router node that owns it
  /// (provided by the scenario from the WlanManager). Needed to answer
  /// RtSolPr: the MH names a link-layer target, the PAR maps it to the NAR.
  void set_ap_resolver(std::function<Node*(NodeId ap)> fn) {
    ap_resolver_ = std::move(fn);
  }

  // ArAttachListener (wired to the WLAN layer).
  void on_mh_attached(MhId mh, NodeId ap, SimplexLink& downlink) override;
  void on_mh_detached(MhId mh) override;

  /// Crash/restart fault model: the agent process loses every in-memory
  /// handover context — negotiated grants, host routes, pending timers, and
  /// all buffered packets (accounted as kFaultInjected drops). Link-layer
  /// attachment state survives (the access points re-sync associations on
  /// restart), so plain delivery to attached hosts keeps working.
  void fault_reset();

  Node& node() { return node_; }
  Address address() const { return node_.address(); }
  std::uint32_t prefix() const { return node_.address().net; }
  BufferManager& buffers() { return buffers_; }
  /// Handover admission control (NAR side; off by default).
  HandoverAuthenticator& auth() { return auth_; }
  /// Marks an interface identifier as already in use on this subnet —
  /// NCoA proposals colliding with it get a substitute address (§2.3.2's
  /// "verifying if NCoA ... is a valid address in the subnet").
  void reserve_host_id(std::uint32_t host) { reserved_hosts_.insert(host); }
  std::uint64_t ncoa_collisions() const { return ncoa_collisions_; }
  /// Downstream rate estimate for an attached host (adaptive allocation).
  double estimated_pps(MhId mh) const;
  const Counters& counters() const { return counters_; }
  const BufferSchemeConfig& config() const { return cfg_; }
  const RetransmitPolicy& rtx_policy() const { return rtx_; }
  bool mh_attached(MhId mh) const { return attached_.count(mh) > 0; }
  bool has_par_context(MhId mh) const { return par_.count(mh) > 0; }
  bool has_nar_context(MhId mh) const { return nar_.count(mh) > 0; }
  bool par_redirecting(MhId mh) const;

 private:
  struct ParContext {
    MhId mh = kNoNode;
    Address pcoa;
    Address nar_addr;
    std::uint32_t par_grant = 0;   // local lease size (0 = none)
    std::uint32_t nar_grant = 0;   // what the NAR granted via HAck+BA
    bool nar_rejected = false;     // HAck refused / negotiation exhausted
    bool hack_received = false;
    bool redirecting = false;
    bool nar_full = false;         // Buffer Full received from the NAR
    bool bf_received = false;      // NAR released; stop buffering
    bool draining = false;
    BufferRequest request;
    SimTime lease_deadline;        // reaper backstop for local allocations
    EventId start_timer = kInvalidEvent;
    EventId lifetime_timer = kInvalidEvent;
    // Reliability: the solicitation transaction this context answers, the
    // cached HI for retransmission, and the cached advertisement for
    // duplicate solicitations.
    CtrlSeq rtsolpr_seq = kNoCtrlSeq;
    CtrlSeq last_fbu_seq = kNoCtrlSeq;
    HiMsg hi_msg;
    PrRtAdvMsg adv_msg;
    bool adv_sent = false;
    bool hi_exhausted = false;
    EventId hi_timer = kInvalidEvent;
    std::uint32_t hi_sends = 0;
  };
  struct NarContext {
    MhId mh = kNoNode;
    Address pcoa;
    Address par_addr;
    std::uint32_t grant = 0;
    bool mh_here = false;  // FNA received / attach seen
    bool full_signalled = false;
    bool draining = false;
    EventId lifetime_timer = kInvalidEvent;
    // Reliability: the HI transaction that built this context, with the
    // cached HAck a duplicate HI re-elicits (no re-allocation).
    CtrlSeq hi_seq = kNoCtrlSeq;
    CtrlSeq last_fna_seq = kNoCtrlSeq;
    HackMsg hack_msg;
  };
  struct IntraContext {
    MhId mh = kNoNode;
    std::uint32_t grant = 0;
    bool buffering = false;
    bool draining = false;
    Address forward_to;  // standalone-BF forwarding target (baseline mode)
    EventId start_timer = kInvalidEvent;
    EventId lifetime_timer = kInvalidEvent;
    CtrlSeq rtsolpr_seq = kNoCtrlSeq;
    CtrlSeq last_fbu_seq = kNoCtrlSeq;
    CtrlSeq last_fna_seq = kNoCtrlSeq;
    PrRtAdvMsg adv_msg;
    bool adv_sent = false;
  };

  // Control-plane handlers.
  bool handle_control(PacketPtr& p);
  void on_rtsolpr(const RtSolPrMsg& m, Address src);
  void on_hi(const HiMsg& m);
  void on_hack(const HackMsg& m);
  void on_fbu(const FbuMsg& m);
  void on_fna(const FnaMsg& m, Address src);
  void on_bf(const BfMsg& m);
  void on_buffer_full(const BufferFullMsg& m);
  void on_bi(const BiMsg& m);
  void send_fback(const ParContext& ctx, CtrlSeq seq, bool from_new_link);
  void hi_timeout(MhId mh);

  // Data plane.
  void handle_subnet_packet(PacketPtr p);
  void par_redirect(ParContext& ctx, PacketPtr p);
  void par_buffer_local(ParContext& ctx, PacketPtr p);
  void nar_handle(NarContext& ctx, PacketPtr p);
  void nar_buffer(NarContext& ctx, PacketPtr p);
  void deliver(MhId mh, PacketPtr p);
  void tunnel_to(Address ar, ForwardDirective d, PacketPtr p);
  void drop(PacketPtr p, DropReason reason);

  // Buffer release (§3.2.2.3), paced by cfg_.drain_gap. The public entry
  // points are idempotent (a live chain is never doubled by a duplicate
  // FNA/BF); the _step functions self-reschedule while packets remain.
  void drain_par(MhId mh);
  void drain_nar(MhId mh);
  void drain_intra(MhId mh);
  void drain_par_step(MhId mh);
  void drain_nar_step(MhId mh);
  void drain_intra_step(MhId mh);

  void teardown_par(MhId mh, DropReason reason = DropReason::kBufferExpired);
  void teardown_nar(MhId mh, DropReason reason = DropReason::kBufferExpired);
  void teardown_intra(MhId mh, DropReason reason = DropReason::kBufferExpired);

  void send_control(Address dst, MessageVariant m,
                    std::uint32_t bytes = kCtrlMsgBytes);

  Node& node_;
  Node::ControlHandlerId ctrl_id_ = 0;
  BufferSchemeConfig cfg_;
  RetransmitPolicy rtx_;
  BufferManager buffers_;
  // Registry-owned metric series, resolved once at construction (O(1)
  // increments on the forwarding path).
  obs::Counter* m_buffered_ = nullptr;
  obs::Counter* m_drained_ = nullptr;
  obs::Counter* m_crashes_ = nullptr;
  std::function<Node*(NodeId)> ap_resolver_;
  std::map<MhId, ParContext> par_;
  std::map<MhId, NarContext> nar_;
  std::map<MhId, IntraContext> intra_;
  std::map<MhId, SimplexLink*> attached_;
  std::map<MhId, RateEstimator> rates_;
  HandoverAuthenticator auth_;
  std::set<std::uint32_t> reserved_hosts_;
  std::map<std::uint32_t, MhId> host_alias_;  // substituted NCoA hosts
  std::uint64_t ncoa_collisions_ = 0;
  CtrlSeq next_seq_ = 0;
  Counters counters_;
};

}  // namespace fhmip
