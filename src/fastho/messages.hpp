#pragma once

// Fast Handover message definitions live with the packet layer
// (net/messages.hpp) because packets carry them by value; this header is the
// protocol-facing include point.

#include "net/messages.hpp"
#include "net/packet.hpp"

namespace fhmip {

/// Default control-message sizes (bytes on the wire, approximating the
/// IPv6 + ICMPv6 option encodings; the buffer extensions piggyback at zero
/// extra message cost, §3.3).
inline constexpr std::uint32_t kCtrlMsgBytes = 64;
inline constexpr std::uint32_t kRtAdvBytes = 80;

}  // namespace fhmip
