#pragma once

#include <cstdint>

#include "buffer/policy.hpp"
#include "fastho/messages.hpp"
#include "fastho/reliability.hpp"
#include "mip/mobile_ip.hpp"
#include "net/node.hpp"
#include "obs/timeline.hpp"
#include "stats/handover_outcomes.hpp"
#include "wireless/wlan.hpp"

namespace fhmip {

/// Mobile-host protocol agent: drives the Fast Handover choreography from
/// the MH side (Figure 3.2) in response to link-layer events:
///
///   L2-ST            → RtSolPr+BI to the PAR (anticipation)
///   PrRtAdv          → form the NCoA, note the buffer grants
///   radio about down → FBU (starts packet redirection)
///   attach at NAR    → FNA+BF, then HMIPv6 binding update to the MAP
///
/// Also handles the §3.2.2.4 intra-AR (pure link-layer) handoff and the
/// non-anticipated path (FBU from the new link).
///
/// Control-plane reliability: every message the MH originates (RtSolPr+BI,
/// FBU, FNA+BF) carries a transaction sequence number and is retransmitted
/// with exponential backoff until acknowledged (PrRtAdv, FBack, FNAAck) or
/// the retry cap is hit. Exhaustion degrades gracefully: a missing PrRtAdv
/// abandons anticipation, an unconfirmed FBU is reissued from the new link
/// (the reactive path, §2.3.2), and only an unacknowledged reactive FBU
/// marks the attempt failed. Outcomes are reported per attempt to the
/// configured HandoverOutcomeRecorder.
class MhAgent : public L2Callbacks {
 public:
  struct Config {
    BufferSchemeConfig scheme;
    bool use_fast_handover = true;
    /// Piggyback BI on RtSolPr (the thesis's enhancement; false = plain
    /// Fast Handover signaling).
    bool request_buffers = true;
    /// React to L2-ST triggers; false exercises the non-anticipated path
    /// (the FBU goes via the new link after attachment, §2.3.2).
    bool anticipate = true;
    /// §3.1.1's alternative scheme: on anticipation, add the prospective
    /// NCoA as a secondary (bicast) binding at the MAP instead of / in
    /// addition to buffering. Kept as a comparison baseline — a
    /// single-radio host cannot hear the second cell, which is the
    /// thesis's argument for buffering.
    bool simultaneous_binding = false;
    /// Shared handover-authentication key (0 = none). The token derived
    /// from it is stamped on RtSolPr and verified by the NAR (§5).
    std::uint64_t auth_key = 0;
    /// BI start_time = trigger time + this offset; zero disables the
    /// fast-mover safety valve.
    SimTime start_time_offset;
    SimTime bu_lifetime = SimTime::seconds(60);
    /// Control-message retransmission/backoff (rtx.enabled = false
    /// restores fire-and-forget signaling).
    RetransmitPolicy rtx;
    /// Per-attempt liveness deadline (zero = disabled). Armed when an
    /// inter-AR attempt starts (L2 trigger / predisconnect / detach) and
    /// disarmed at resolution; if it fires, the wedged choreography is torn
    /// down and the attempt recorded as kFailed/kWatchdog — after one legal
    /// reactive retry (§2.3.2) when the host is attached with an
    /// unconfirmed predictive FBU. Must cover the whole attempt: the
    /// anticipation window plus the blackout plus the FNA exchange.
    SimTime watchdog;
    /// Per-attempt handover outcome sink (optional; not owned).
    HandoverOutcomeRecorder* outcomes = nullptr;
  };

  struct Counters {
    std::uint32_t l2_triggers = 0;
    std::uint32_t rtsolpr_sent = 0;
    std::uint32_t prrtadv_received = 0;
    std::uint32_t fbu_sent = 0;
    std::uint32_t fback_received = 0;
    std::uint32_t fna_sent = 0;
    std::uint32_t handoffs = 0;        // attach events after the first
    std::uint32_t intra_handoffs = 0;
    std::uint32_t non_anticipated = 0;
    // Reliability layer.
    std::uint32_t rtsolpr_rtx = 0;     // RtSolPr resends
    std::uint32_t fbu_rtx = 0;         // FBU resends (old or new link)
    std::uint32_t fna_rtx = 0;         // FNA resends
    std::uint32_t rtsolpr_exhausted = 0;  // anticipation abandoned
    std::uint32_t fbu_exhausted = 0;      // reactive FBU unacknowledged
    std::uint32_t reactive_fbu = 0;    // FBU reissued from the new link
                                       // after an unconfirmed predictive one
    std::uint32_t watchdog_fired = 0;  // liveness deadline expiries
    std::uint32_t watchdog_failed = 0; // attempts it resolved kFailed
  };

  MhAgent(Node& node, Config cfg, MobileIpClient* mip);
  ~MhAgent() override;

  MhAgent(const MhAgent&) = delete;
  MhAgent& operator=(const MhAgent&) = delete;

  // L2Callbacks.
  void on_l2_trigger(NodeId target_ap, Node& target_ar) override;
  void on_predisconnect(NodeId target_ap, Node& target_ar) override;
  void on_attached(NodeId ap, Node& ar) override;
  void on_detached() override;

  Node& node() { return node_; }
  MhId id() const { return node_.id(); }
  Address pcoa() const { return pcoa_; }
  Address current_ar_addr() const { return current_ar_addr_; }
  const Counters& counters() const { return counters_; }
  const BufferGrant& last_grant() const { return last_grant_; }

  /// Smooth-handover baseline (§2.4): standalone BI to the current AR.
  void send_buffer_init(std::uint32_t size_pkts, SimTime start_time,
                        SimTime lifetime);
  /// Baseline release: BF to `to_ar` (usually the previous AR) with an
  /// optional forwarding target for the buffered packets.
  void send_buffer_forward(Address to_ar, Address forward_to = kNoAddress);

 private:
  /// Which FBU copy the retransmission timer currently guards.
  enum class FbuPhase : std::uint8_t {
    kIdle,
    kOldLink,  // predictive FBU, resent on the old link while it is up
    kVerify,   // attached at the NAR, waiting for the (drained) FBack
    kNewLink,  // reactive FBU from the new link (§2.3.2)
  };

  bool handle_control(PacketPtr& p);
  void on_prrtadv(const PrRtAdvMsg& m);
  void on_fback(const FbackMsg& m);
  void send_rtsolpr(NodeId target_ap);
  void resend_rtsolpr();
  void rtsolpr_timeout();
  void send_fbu(Address to, Address nar_addr, bool from_new_link);
  void send_reactive_fbu();
  void fbu_timeout();
  void send_fna(Address src, Address dst);
  void fna_timeout();
  void arm(EventId& timer, std::uint32_t attempt, void (MhAgent::*fn)());
  void cancel_timers();
  /// Starts the liveness deadline for the in-flight inter-AR attempt
  /// (no-op when disabled, already armed, or the attempt is intra-AR).
  void arm_watchdog();
  void disarm_watchdog();
  void watchdog_fired();
  /// Records the current attempt's outcome (no-op when already resolved).
  void resolve_outcome(HandoverOutcome outcome, HandoverCause cause);
  /// Lands a handover-timeline record for this MH at the current sim time.
  void mark(obs::HoEventKind kind);

  Node& node_;
  Node::ControlHandlerId ctrl_id_ = 0;
  Config cfg_;
  MobileIpClient* mip_;

  Address current_ar_addr_;  // AR we are (were) attached to
  Address pcoa_;             // care-of address on the current subnet
  bool first_attach_done_ = false;

  // Handoff-in-progress state.
  NodeId target_ap_ = kNoNode;
  Address target_ar_addr_;
  bool anticipated_ = false;      // RtSolPr sent for the current target
  bool prrtadv_received_ = false;
  bool fbu_sent_on_old_link_ = false;
  bool intra_pending_ = false;
  Address negotiated_ncoa_;  // validated by the NAR (may differ on collision)
  BufferGrant last_grant_;

  // Reliability layer state.
  CtrlSeq next_seq_ = 0;
  RtSolPrMsg pending_rtsolpr_;
  EventId rtsolpr_timer_ = kInvalidEvent;
  std::uint32_t rtsolpr_sends_ = 0;
  bool prrtadv_timed_out_ = false;

  FbuMsg pending_fbu_;
  Address fbu_src_;
  Address fbu_dst_;
  FbuPhase fbu_phase_ = FbuPhase::kIdle;
  EventId fbu_timer_ = kInvalidEvent;
  std::uint32_t fbu_sends_ = 0;
  CtrlSeq fbu_old_seq_ = kNoCtrlSeq;  // predictive FBU (old link)
  CtrlSeq fbu_new_seq_ = kNoCtrlSeq;  // reactive FBU (new link)
  bool fback_received_ = false;       // FBack seen for the current attempt

  FnaMsg pending_fna_;
  Address fna_src_;
  Address fna_dst_;
  EventId fna_timer_ = kInvalidEvent;
  std::uint32_t fna_sends_ = 0;

  // Liveness watchdog state.
  EventId watchdog_timer_ = kInvalidEvent;
  bool link_up_ = false;           // radio currently attached to an AP
  bool watchdog_rearmed_ = false;  // the one reactive retry was spent

  // Outcome bookkeeping for the in-flight inter-AR attempt.
  bool outcome_pending_ = false;
  HandoverCause pending_cause_ = HandoverCause::kNone;

  Counters counters_;
};

}  // namespace fhmip
