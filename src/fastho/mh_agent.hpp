#pragma once

#include <cstdint>

#include "buffer/policy.hpp"
#include "fastho/messages.hpp"
#include "mip/mobile_ip.hpp"
#include "net/node.hpp"
#include "wireless/wlan.hpp"

namespace fhmip {

/// Mobile-host protocol agent: drives the Fast Handover choreography from
/// the MH side (Figure 3.2) in response to link-layer events:
///
///   L2-ST            → RtSolPr+BI to the PAR (anticipation)
///   PrRtAdv          → form the NCoA, note the buffer grants
///   radio about down → FBU (starts packet redirection)
///   attach at NAR    → FNA+BF, then HMIPv6 binding update to the MAP
///
/// Also handles the §3.2.2.4 intra-AR (pure link-layer) handoff and the
/// non-anticipated path (FBU from the new link).
class MhAgent : public L2Callbacks {
 public:
  struct Config {
    BufferSchemeConfig scheme;
    bool use_fast_handover = true;
    /// Piggyback BI on RtSolPr (the thesis's enhancement; false = plain
    /// Fast Handover signaling).
    bool request_buffers = true;
    /// React to L2-ST triggers; false exercises the non-anticipated path
    /// (the FBU goes via the new link after attachment, §2.3.2).
    bool anticipate = true;
    /// §3.1.1's alternative scheme: on anticipation, add the prospective
    /// NCoA as a secondary (bicast) binding at the MAP instead of / in
    /// addition to buffering. Kept as a comparison baseline — a
    /// single-radio host cannot hear the second cell, which is the
    /// thesis's argument for buffering.
    bool simultaneous_binding = false;
    /// Shared handover-authentication key (0 = none). The token derived
    /// from it is stamped on RtSolPr and verified by the NAR (§5).
    std::uint64_t auth_key = 0;
    /// BI start_time = trigger time + this offset; zero disables the
    /// fast-mover safety valve.
    SimTime start_time_offset;
    SimTime bu_lifetime = SimTime::seconds(60);
  };

  struct Counters {
    std::uint32_t l2_triggers = 0;
    std::uint32_t rtsolpr_sent = 0;
    std::uint32_t prrtadv_received = 0;
    std::uint32_t fbu_sent = 0;
    std::uint32_t fback_received = 0;
    std::uint32_t fna_sent = 0;
    std::uint32_t handoffs = 0;        // attach events after the first
    std::uint32_t intra_handoffs = 0;
    std::uint32_t non_anticipated = 0;
  };

  MhAgent(Node& node, Config cfg, MobileIpClient* mip);
  ~MhAgent() override;

  MhAgent(const MhAgent&) = delete;
  MhAgent& operator=(const MhAgent&) = delete;

  // L2Callbacks.
  void on_l2_trigger(NodeId target_ap, Node& target_ar) override;
  void on_predisconnect(NodeId target_ap, Node& target_ar) override;
  void on_attached(NodeId ap, Node& ar) override;
  void on_detached() override;

  Node& node() { return node_; }
  MhId id() const { return node_.id(); }
  Address pcoa() const { return pcoa_; }
  Address current_ar_addr() const { return current_ar_addr_; }
  const Counters& counters() const { return counters_; }
  const BufferGrant& last_grant() const { return last_grant_; }

  /// Smooth-handover baseline (§2.4): standalone BI to the current AR.
  void send_buffer_init(std::uint32_t size_pkts, SimTime start_time,
                        SimTime lifetime);
  /// Baseline release: BF to `to_ar` (usually the previous AR) with an
  /// optional forwarding target for the buffered packets.
  void send_buffer_forward(Address to_ar, Address forward_to = kNoAddress);

 private:
  bool handle_control(PacketPtr& p);
  void send_rtsolpr(NodeId target_ap);
  void send_fbu(Address to, Address nar_addr, bool from_new_link);

  Node& node_;
  Node::ControlHandlerId ctrl_id_ = 0;
  Config cfg_;
  MobileIpClient* mip_;

  Address current_ar_addr_;  // AR we are (were) attached to
  Address pcoa_;             // care-of address on the current subnet
  bool first_attach_done_ = false;

  // Handoff-in-progress state.
  NodeId target_ap_ = kNoNode;
  Address target_ar_addr_;
  bool anticipated_ = false;      // RtSolPr sent for the current target
  bool prrtadv_received_ = false;
  bool fbu_sent_on_old_link_ = false;
  bool intra_pending_ = false;
  Address negotiated_ncoa_;  // validated by the NAR (may differ on collision)
  BufferGrant last_grant_;

  Counters counters_;
};

}  // namespace fhmip
