#include "fastho/mh_agent.hpp"

#include "fastho/auth.hpp"
#include "sim/check.hpp"
#include "sim/simulation.hpp"

namespace fhmip {

using obs::HoEventKind;

MhAgent::MhAgent(Node& node, Config cfg, MobileIpClient* mip)
    : node_(node), cfg_(cfg), mip_(mip) {
  ctrl_id_ = node_.add_control_handler(
      [this](PacketPtr& p) { return handle_control(p); });
}

MhAgent::~MhAgent() {
  cancel_timers();
  node_.remove_control_handler(ctrl_id_);
}

void MhAgent::arm(EventId& timer, std::uint32_t attempt,
                  void (MhAgent::*fn)()) {
  if (timer != kInvalidEvent) node_.sim().cancel(timer);
  timer = node_.sim().in(cfg_.rtx.timeout_for(attempt),
                         [this, fn] { (this->*fn)(); });
}

void MhAgent::cancel_timers() {
  Simulation& sim = node_.sim();
  if (rtsolpr_timer_ != kInvalidEvent) sim.cancel(rtsolpr_timer_);
  if (fbu_timer_ != kInvalidEvent) sim.cancel(fbu_timer_);
  if (fna_timer_ != kInvalidEvent) sim.cancel(fna_timer_);
  if (watchdog_timer_ != kInvalidEvent) sim.cancel(watchdog_timer_);
  rtsolpr_timer_ = fbu_timer_ = fna_timer_ = watchdog_timer_ = kInvalidEvent;
  fbu_phase_ = FbuPhase::kIdle;
}

void MhAgent::arm_watchdog() {
  if (cfg_.watchdog.is_zero() || intra_pending_) return;
  if (watchdog_timer_ != kInvalidEvent) return;  // per-attempt, first wins
  watchdog_rearmed_ = false;
  watchdog_timer_ =
      node_.sim().in(cfg_.watchdog, [this] { watchdog_fired(); });
}

void MhAgent::disarm_watchdog() {
  if (watchdog_timer_ != kInvalidEvent) node_.sim().cancel(watchdog_timer_);
  watchdog_timer_ = kInvalidEvent;
  watchdog_rearmed_ = false;
}

void MhAgent::watchdog_fired() {
  watchdog_timer_ = kInvalidEvent;
  ++counters_.watchdog_fired;
  mark(HoEventKind::kWatchdogFired);
  // One legal self-repair before declaring failure: attached with an
  // unconfirmed predictive FBU and no reactive reissue in flight — re-enter
  // the §2.3.2 path and grant it a second deadline.
  if (!watchdog_rearmed_ && link_up_ && fbu_old_seq_ != kNoCtrlSeq &&
      !fback_received_ && fbu_new_seq_ == kNoCtrlSeq && outcome_pending_) {
    watchdog_rearmed_ = true;
    send_reactive_fbu();
    watchdog_timer_ =
        node_.sim().in(cfg_.watchdog, [this] { watchdog_fired(); });
    return;
  }
  // Wedged: no retransmission timer left that could make progress (or the
  // radio never came back). Tear the attempt down and record the typed
  // cause; the AR-side state follows via lifetime timers and the lease
  // reaper.
  ++counters_.watchdog_failed;
  cancel_timers();
  watchdog_rearmed_ = false;
  // Detach-and-vanish wedges never reach on_attached, so no outcome was
  // opened there — open it now; the attempt must close, never stay wedged.
  outcome_pending_ = true;
  resolve_outcome(HandoverOutcome::kFailed, HandoverCause::kWatchdog);
  anticipated_ = false;
  prrtadv_timed_out_ = false;
  fbu_sent_on_old_link_ = false;
  fbu_old_seq_ = fbu_new_seq_ = kNoCtrlSeq;
  target_ap_ = kNoNode;
}

void MhAgent::resolve_outcome(HandoverOutcome outcome, HandoverCause cause) {
  if (!outcome_pending_) return;
  outcome_pending_ = false;
  pending_cause_ = HandoverCause::kNone;
  disarm_watchdog();
  Simulation& sim = node_.sim();
  const PhaseBreakdown phases =
      sim.timeline().resolve(sim.now(), id(), outcome, cause);
  if (cfg_.outcomes != nullptr) {
    cfg_.outcomes->record(id(), sim.now(), outcome, cause, phases);
  }
}

void MhAgent::mark(HoEventKind kind) {
  Simulation& sim = node_.sim();
  sim.timeline().record(sim.now(), id(), kind, node_.name());
}

bool MhAgent::handle_control(PacketPtr& p) {
  if (const auto* adv = std::get_if<PrRtAdvMsg>(&p->msg)) {
    if (adv->mh != id()) return false;
    on_prrtadv(*adv);
    return true;
  }
  if (const auto* fb = std::get_if<FbackMsg>(&p->msg)) {
    if (fb->mh != id()) return false;
    on_fback(*fb);
    return true;
  }
  if (const auto* ack = std::get_if<FnaAckMsg>(&p->msg)) {
    if (ack->mh != id()) return false;
    if (ack->seq == kNoCtrlSeq || ack->seq == pending_fna_.seq) {
      if (fna_timer_ != kInvalidEvent) node_.sim().cancel(fna_timer_);
      fna_timer_ = kInvalidEvent;
    }
    return true;
  }
  if (std::get_if<BaMsg>(&p->msg) != nullptr) {
    mark(HoEventKind::kBaRecv);
    return true;
  }
  if (std::get_if<RouterAdvMsg>(&p->msg) != nullptr) {
    // Movement detection input; anticipation is driven by L2 triggers in
    // this implementation, so advertisements are informational.
    return true;
  }
  return false;
}

void MhAgent::on_prrtadv(const PrRtAdvMsg& m) {
  // Answers the outstanding solicitation (or is a duplicate of one that
  // already did — both settle the retransmission timer). A stale echo for
  // an older transaction is ignored.
  if (m.seq != kNoCtrlSeq && pending_rtsolpr_.seq != kNoCtrlSeq &&
      m.seq != pending_rtsolpr_.seq) {
    return;
  }
  ++counters_.prrtadv_received;
  mark(HoEventKind::kPrRtAdvRecv);
  if (rtsolpr_timer_ != kInvalidEvent) node_.sim().cancel(rtsolpr_timer_);
  rtsolpr_timer_ = kInvalidEvent;
  prrtadv_received_ = true;
  last_grant_ = m.grant;
  negotiated_ncoa_ = m.ncoa;
  if (m.intra_ar) intra_pending_ = true;
  if (prrtadv_timed_out_ && target_ap_ != kNoNode && !fbu_sent_on_old_link_) {
    // The advertisement beat us after all; resume the anticipated path.
    prrtadv_timed_out_ = false;
    anticipated_ = true;
  }
}

void MhAgent::on_fback(const FbackMsg& m) {
  ++counters_.fback_received;
  const bool matches_old = fbu_old_seq_ != kNoCtrlSeq && m.seq == fbu_old_seq_;
  const bool matches_new = fbu_new_seq_ != kNoCtrlSeq && m.seq == fbu_new_seq_;
  if (m.seq != kNoCtrlSeq && !matches_old && !matches_new) return;  // stale
  fback_received_ = true;
  mark(HoEventKind::kFbackRecv);
  if (fbu_timer_ != kInvalidEvent) node_.sim().cancel(fbu_timer_);
  fbu_timer_ = kInvalidEvent;
  fbu_phase_ = FbuPhase::kIdle;
  if (!outcome_pending_) return;
  // Which FBU copy got through decides the attempt's classification: the
  // old-link (predictive) one, or the reactive reissue from the new link.
  if (matches_new || (m.seq == kNoCtrlSeq && fbu_new_seq_ != kNoCtrlSeq)) {
    resolve_outcome(HandoverOutcome::kReactive,
                    pending_cause_ == HandoverCause::kNone
                        ? HandoverCause::kNotAnticipated
                        : pending_cause_);
  } else {
    resolve_outcome(HandoverOutcome::kPredictive, HandoverCause::kNone);
  }
}

void MhAgent::on_l2_trigger(NodeId target_ap, Node& target_ar) {
  ++counters_.l2_triggers;
  if (!first_attach_done_) return;
  mark(HoEventKind::kL2Trigger);
  if (cfg_.simultaneous_binding && mip_ != nullptr &&
      target_ar.address() != current_ar_addr_) {
    mip_->send_simultaneous_binding(make_coa(target_ar.address().net, id()),
                                    cfg_.bu_lifetime);
  }
  if (!cfg_.use_fast_handover || !cfg_.anticipate) return;
  target_ap_ = target_ap;
  target_ar_addr_ = target_ar.address();
  intra_pending_ = target_ar_addr_ == current_ar_addr_;
  prrtadv_received_ = false;
  prrtadv_timed_out_ = false;
  fbu_sent_on_old_link_ = false;
  fback_received_ = false;
  anticipated_ = true;
  arm_watchdog();
  send_rtsolpr(target_ap);
}

void MhAgent::send_rtsolpr(NodeId target_ap) {
  RtSolPrMsg m;
  m.mh = id();
  m.target_ap = target_ap;
  if (cfg_.auth_key != 0) {
    m.auth_token = HandoverAuthenticator::token(id(), cfg_.auth_key);
  }
  if (cfg_.request_buffers) {
    m.has_bi = true;
    m.bi.size_pkts = cfg_.scheme.request_pkts;
    m.bi.lifetime = cfg_.scheme.lifetime;
    if (!cfg_.start_time_offset.is_zero()) {
      m.bi.start_time = node_.sim().now() + cfg_.start_time_offset;
    }
  }
  m.seq = ++next_seq_;
  pending_rtsolpr_ = m;
  rtsolpr_sends_ = 1;
  ++counters_.rtsolpr_sent;
  mark(HoEventKind::kRtSolPrSent);
  node_.send(make_control(node_.sim(), pcoa_, current_ar_addr_, m));
  if (cfg_.rtx.enabled) {
    arm(rtsolpr_timer_, 0, &MhAgent::rtsolpr_timeout);
  }
}

void MhAgent::rtsolpr_timeout() {
  rtsolpr_timer_ = kInvalidEvent;
  if (prrtadv_received_ || !anticipated_) return;
  if (rtsolpr_sends_ > cfg_.rtx.max_retries) {
    // No PrRtAdv despite retries: abandon anticipation. The handover
    // still completes via the reactive path after attachment (§2.3.2).
    ++counters_.rtsolpr_exhausted;
    prrtadv_timed_out_ = true;
    anticipated_ = false;
    if (pending_cause_ == HandoverCause::kNone) {
      pending_cause_ = HandoverCause::kNoPrRtAdv;
    }
    return;
  }
  ++counters_.rtsolpr_rtx;
  node_.send(
      make_control(node_.sim(), pcoa_, current_ar_addr_, pending_rtsolpr_));
  ++rtsolpr_sends_;
  arm(rtsolpr_timer_, rtsolpr_sends_ - 1, &MhAgent::rtsolpr_timeout);
}

void MhAgent::send_fbu(Address to, Address nar_addr, bool from_new_link) {
  FbuMsg m;
  m.mh = id();
  m.pcoa = pcoa_;
  m.nar_addr = nar_addr;
  m.from_new_link = from_new_link;
  m.seq = ++next_seq_;
  pending_fbu_ = m;
  fbu_src_ = pcoa_;
  fbu_dst_ = to;
  fbu_sends_ = 1;
  if (from_new_link) {
    fbu_new_seq_ = m.seq;
    fbu_phase_ = FbuPhase::kNewLink;
  } else {
    fbu_old_seq_ = m.seq;
    fbu_new_seq_ = kNoCtrlSeq;
    fbu_phase_ = FbuPhase::kOldLink;
  }
  ++counters_.fbu_sent;
  mark(from_new_link ? HoEventKind::kReactiveFbuSent : HoEventKind::kFbuSent);
  node_.send(make_control(node_.sim(), pcoa_, to, m));
  if (cfg_.rtx.enabled) {
    arm(fbu_timer_, 0, &MhAgent::fbu_timeout);
  } else {
    fbu_phase_ = FbuPhase::kIdle;
  }
}

void MhAgent::send_reactive_fbu() {
  // Reissue the unconfirmed binding update from the new link (§2.3.2). The
  // redirected address is the *previous* care-of address, preserved in the
  // cached predictive FBU.
  FbuMsg m = pending_fbu_;
  m.from_new_link = true;
  m.seq = ++next_seq_;
  pending_fbu_ = m;
  fbu_src_ = pcoa_;
  fbu_new_seq_ = m.seq;
  fbu_phase_ = FbuPhase::kNewLink;
  fbu_sends_ = 1;
  ++counters_.reactive_fbu;
  ++counters_.fbu_sent;
  mark(HoEventKind::kReactiveFbuSent);
  if (pending_cause_ == HandoverCause::kNone) {
    pending_cause_ = HandoverCause::kNoFback;
  }
  node_.send(make_control(node_.sim(), fbu_src_, fbu_dst_, m));
  arm(fbu_timer_, 0, &MhAgent::fbu_timeout);
}

void MhAgent::fbu_timeout() {
  fbu_timer_ = kInvalidEvent;
  if (fback_received_) {
    fbu_phase_ = FbuPhase::kIdle;
    return;
  }
  switch (fbu_phase_) {
    case FbuPhase::kIdle:
      return;
    case FbuPhase::kOldLink:
      if (fbu_sends_ > cfg_.rtx.max_retries) {
        // Keep the attempt alive: the unconfirmed FBU is reissued from the
        // new link once we attach (the kVerify phase handles it).
        fbu_phase_ = FbuPhase::kIdle;
        return;
      }
      ++counters_.fbu_rtx;
      node_.send(make_control(node_.sim(), fbu_src_, fbu_dst_, pending_fbu_));
      ++fbu_sends_;
      arm(fbu_timer_, fbu_sends_ - 1, &MhAgent::fbu_timeout);
      return;
    case FbuPhase::kVerify:
      // Attached, but the (tunnel-drained) FBack never showed: fall back
      // to the reactive path rather than trusting the old-link FBU.
      send_reactive_fbu();
      return;
    case FbuPhase::kNewLink:
      if (fbu_sends_ > cfg_.rtx.max_retries) {
        ++counters_.fbu_exhausted;
        fbu_phase_ = FbuPhase::kIdle;
        resolve_outcome(HandoverOutcome::kFailed, HandoverCause::kNoFback);
        return;
      }
      ++counters_.fbu_rtx;
      node_.send(make_control(node_.sim(), fbu_src_, fbu_dst_, pending_fbu_));
      ++fbu_sends_;
      arm(fbu_timer_, fbu_sends_ - 1, &MhAgent::fbu_timeout);
      return;
  }
}

void MhAgent::on_predisconnect(NodeId target_ap, Node& target_ar) {
  if (!cfg_.use_fast_handover || !first_attach_done_) return;
  if (outcome_pending_) {
    // A previous attempt never settled (extreme loss); close it out before
    // its bookkeeping is reused.
    resolve_outcome(HandoverOutcome::kFailed, HandoverCause::kNoFback);
  }
  if (anticipated_ && target_ap_ == target_ap) {
    // Anticipated path: FBU on the old link just before it drops. The
    // anticipation flag is only ever set by a sent RtSolPr (BI ordering).
    FHMIP_AUDIT("fastho", counters_.rtsolpr_sent > 0);
    fback_received_ = false;
    arm_watchdog();
    send_fbu(current_ar_addr_, target_ar.address(), /*from_new_link=*/false);
    fbu_sent_on_old_link_ = true;
  } else {
    // We never anticipated this target; the FBU will go via the new link.
    if (anticipated_ && pending_cause_ == HandoverCause::kNone) {
      pending_cause_ = HandoverCause::kTargetChanged;
    }
    target_ap_ = target_ap;
    target_ar_addr_ = target_ar.address();
    intra_pending_ = target_ar_addr_ == current_ar_addr_;
    anticipated_ = false;
    arm_watchdog();
  }
}

void MhAgent::on_detached() {
  link_up_ = false;
  if (first_attach_done_) {
    mark(HoEventKind::kBlackoutStart);
    // A blackout with no watchdog is the canonical wedge: if the radio
    // never reattaches, nothing else will ever close this attempt.
    if (cfg_.use_fast_handover) arm_watchdog();
  }
  // The old link is gone: retransmitting on it could only feed the drop
  // counters. Unconfirmed exchanges are settled at attachment.
  if (rtsolpr_timer_ != kInvalidEvent) node_.sim().cancel(rtsolpr_timer_);
  rtsolpr_timer_ = kInvalidEvent;
  if (fbu_phase_ == FbuPhase::kOldLink) {
    if (fbu_timer_ != kInvalidEvent) node_.sim().cancel(fbu_timer_);
    fbu_timer_ = kInvalidEvent;
    fbu_phase_ = FbuPhase::kIdle;
  }
}

void MhAgent::send_fna(Address src, Address dst) {
  FnaMsg fna;
  fna.mh = id();
  fna.has_bf = cfg_.request_buffers;
  fna.seq = ++next_seq_;
  pending_fna_ = fna;
  fna_src_ = src;
  fna_dst_ = dst;
  fna_sends_ = 1;
  ++counters_.fna_sent;
  mark(HoEventKind::kFnaSent);
  node_.send(make_control(node_.sim(), src, dst, fna));
  if (cfg_.rtx.enabled) {
    arm(fna_timer_, 0, &MhAgent::fna_timeout);
  }
}

void MhAgent::fna_timeout() {
  fna_timer_ = kInvalidEvent;
  if (fna_sends_ > cfg_.rtx.max_retries) {
    // Give up quietly: the buffers drain at lifetime expiry and traffic
    // resumes via the binding update.
    return;
  }
  ++counters_.fna_rtx;
  node_.send(make_control(node_.sim(), fna_src_, fna_dst_, pending_fna_));
  ++fna_sends_;
  arm(fna_timer_, fna_sends_ - 1, &MhAgent::fna_timeout);
}

void MhAgent::on_attached(NodeId /*ap*/, Node& ar) {
  link_up_ = true;
  const Address ar_addr = ar.address();
  // Use the NAR-validated NCoA when one was negotiated for this subnet
  // (it differs from the default when the proposal collided, §2.3.2).
  const Address new_coa =
      (negotiated_ncoa_.valid() && negotiated_ncoa_.net == ar_addr.net)
          ? negotiated_ncoa_
          : make_coa(ar_addr.net, id());
  negotiated_ncoa_ = kNoAddress;

  if (!first_attach_done_) {
    // Initial association: configure the care-of address and register with
    // the MAP so correspondent traffic starts flowing.
    first_attach_done_ = true;
    current_ar_addr_ = ar_addr;
    pcoa_ = new_coa;
    node_.add_address(pcoa_, /*advertised=*/false);
    if (mip_ != nullptr) mip_->send_binding_update(pcoa_, cfg_.bu_lifetime);
    return;
  }

  ++counters_.handoffs;
  mark(HoEventKind::kBlackoutEnd);

  if (ar_addr == current_ar_addr_) {
    // §3.2.2.4: pure link-layer handoff under the same access router —
    // FNA+BF releases the locally buffered packets. No outcome is recorded
    // for intra attempts, so any watchdog armed for a target that turned
    // out to be intra must stand down here.
    disarm_watchdog();
    ++counters_.intra_handoffs;
    if (cfg_.use_fast_handover) {
      send_fna(pcoa_, current_ar_addr_);
    }
    anticipated_ = false;
    target_ap_ = kNoNode;
    return;
  }

  // Inter-AR handover completed at the link layer.
  const Address old_ar = current_ar_addr_;
  node_.add_address(new_coa, /*advertised=*/false);

  if (cfg_.use_fast_handover) {
    if (outcome_pending_) {
      // Left over from an attempt that never settled (extreme loss).
      resolve_outcome(HandoverOutcome::kFailed, HandoverCause::kNoFback);
    }
    outcome_pending_ = true;
    arm_watchdog();
    if (!fbu_sent_on_old_link_) {
      // Non-anticipated handoff: FBU from the new link toward the PAR.
      ++counters_.non_anticipated;
      if (pending_cause_ == HandoverCause::kNone) {
        pending_cause_ = HandoverCause::kNotAnticipated;
      }
      fback_received_ = false;
      const HandoverCause cause = pending_cause_;
      send_fbu(old_ar, ar_addr, /*from_new_link=*/true);
      if (!cfg_.rtx.enabled) {
        // Fire-and-forget mode cannot track the FBack; count the attempt
        // optimistically, as the seed behavior did implicitly.
        resolve_outcome(HandoverOutcome::kReactive, cause);
      }
    } else if (fback_received_) {
      // The FBack made it back on the old link before the blackout.
      resolve_outcome(HandoverOutcome::kPredictive, HandoverCause::kNone);
    } else if (cfg_.rtx.enabled) {
      // The FBack usually rides the redirection tunnel and drains out of
      // the NAR buffer right after the FNA+BF below; give it a grace
      // window before concluding the old-link FBU was lost.
      fbu_dst_ = old_ar;
      fbu_phase_ = FbuPhase::kVerify;
      arm(fbu_timer_, 1, &MhAgent::fbu_timeout);
    } else {
      resolve_outcome(HandoverOutcome::kPredictive, HandoverCause::kNone);
    }
    // FNA(+BF) never precedes the FBU on an inter-AR fast handover; the
    // non-anticipated branch above sends the FBU first.
    FHMIP_AUDIT("fastho", counters_.fbu_sent > 0);
    send_fna(new_coa, ar_addr);
  }

  // HMIPv6 local binding update: reroute the regional address to the new
  // LCoA at the MAP (§2.2.1 step 4).
  if (mip_ != nullptr) mip_->send_binding_update(new_coa, cfg_.bu_lifetime);

  current_ar_addr_ = ar_addr;
  pcoa_ = new_coa;
  anticipated_ = false;
  prrtadv_received_ = false;
  prrtadv_timed_out_ = false;
  fbu_sent_on_old_link_ = false;
  target_ap_ = kNoNode;
}

void MhAgent::send_buffer_init(std::uint32_t size_pkts, SimTime start_time,
                               SimTime lifetime) {
  BiMsg m;
  m.mh = id();
  m.req.size_pkts = size_pkts;
  m.req.start_time = start_time;
  m.req.lifetime = lifetime;
  mark(HoEventKind::kBiSent);
  node_.send(make_control(node_.sim(), pcoa_, current_ar_addr_, m));
}

void MhAgent::send_buffer_forward(Address to_ar, Address forward_to) {
  BfMsg m;
  m.mh = id();
  m.forward_to = forward_to;
  node_.send(make_control(node_.sim(), pcoa_, to_ar, m));
}

}  // namespace fhmip
