#include "fastho/mh_agent.hpp"

#include "fastho/auth.hpp"
#include "sim/check.hpp"

namespace fhmip {

MhAgent::MhAgent(Node& node, Config cfg, MobileIpClient* mip)
    : node_(node), cfg_(cfg), mip_(mip) {
  ctrl_id_ = node_.add_control_handler(
      [this](PacketPtr& p) { return handle_control(p); });
}

MhAgent::~MhAgent() { node_.remove_control_handler(ctrl_id_); }

bool MhAgent::handle_control(PacketPtr& p) {
  if (const auto* adv = std::get_if<PrRtAdvMsg>(&p->msg)) {
    if (adv->mh != id()) return false;
    ++counters_.prrtadv_received;
    prrtadv_received_ = true;
    last_grant_ = adv->grant;
    negotiated_ncoa_ = adv->ncoa;
    if (adv->intra_ar) intra_pending_ = true;
    return true;
  }
  if (const auto* fb = std::get_if<FbackMsg>(&p->msg)) {
    if (fb->mh != id()) return false;
    ++counters_.fback_received;
    return true;
  }
  if (std::get_if<BaMsg>(&p->msg) != nullptr) return true;
  if (std::get_if<RouterAdvMsg>(&p->msg) != nullptr) {
    // Movement detection input; anticipation is driven by L2 triggers in
    // this implementation, so advertisements are informational.
    return true;
  }
  return false;
}

void MhAgent::on_l2_trigger(NodeId target_ap, Node& target_ar) {
  ++counters_.l2_triggers;
  if (!first_attach_done_) return;
  if (cfg_.simultaneous_binding && mip_ != nullptr &&
      target_ar.address() != current_ar_addr_) {
    mip_->send_simultaneous_binding(
        make_coa(target_ar.address().net, id()), cfg_.bu_lifetime);
  }
  if (!cfg_.use_fast_handover || !cfg_.anticipate) return;
  target_ap_ = target_ap;
  target_ar_addr_ = target_ar.address();
  intra_pending_ = target_ar_addr_ == current_ar_addr_;
  prrtadv_received_ = false;
  fbu_sent_on_old_link_ = false;
  anticipated_ = true;
  send_rtsolpr(target_ap);
}

void MhAgent::send_rtsolpr(NodeId target_ap) {
  RtSolPrMsg m;
  m.mh = id();
  m.target_ap = target_ap;
  if (cfg_.auth_key != 0) {
    m.auth_token = HandoverAuthenticator::token(id(), cfg_.auth_key);
  }
  if (cfg_.request_buffers) {
    m.has_bi = true;
    m.bi.size_pkts = cfg_.scheme.request_pkts;
    m.bi.lifetime = cfg_.scheme.lifetime;
    if (!cfg_.start_time_offset.is_zero()) {
      m.bi.start_time = node_.sim().now() + cfg_.start_time_offset;
    }
  }
  ++counters_.rtsolpr_sent;
  node_.send(make_control(node_.sim(), pcoa_, current_ar_addr_, m));
}

void MhAgent::send_fbu(Address to, Address nar_addr, bool from_new_link) {
  FbuMsg m;
  m.mh = id();
  m.pcoa = pcoa_;
  m.nar_addr = nar_addr;
  m.from_new_link = from_new_link;
  ++counters_.fbu_sent;
  node_.send(make_control(node_.sim(), pcoa_, to, m));
}

void MhAgent::on_predisconnect(NodeId target_ap, Node& target_ar) {
  if (!cfg_.use_fast_handover || !first_attach_done_) return;
  if (anticipated_ && target_ap_ == target_ap) {
    // Anticipated path: FBU on the old link just before it drops. The
    // anticipation flag is only ever set by a sent RtSolPr (BI ordering).
    FHMIP_AUDIT("fastho", counters_.rtsolpr_sent > 0);
    send_fbu(current_ar_addr_, target_ar.address(), /*from_new_link=*/false);
    fbu_sent_on_old_link_ = true;
  } else {
    // We never anticipated this target; the FBU will go via the new link.
    target_ap_ = target_ap;
    target_ar_addr_ = target_ar.address();
    intra_pending_ = target_ar_addr_ == current_ar_addr_;
    anticipated_ = false;
  }
}

void MhAgent::on_detached() {}

void MhAgent::on_attached(NodeId /*ap*/, Node& ar) {
  Simulation& sim = node_.sim();
  const Address ar_addr = ar.address();
  // Use the NAR-validated NCoA when one was negotiated for this subnet
  // (it differs from the default when the proposal collided, §2.3.2).
  const Address new_coa =
      (negotiated_ncoa_.valid() && negotiated_ncoa_.net == ar_addr.net)
          ? negotiated_ncoa_
          : make_coa(ar_addr.net, id());
  negotiated_ncoa_ = kNoAddress;

  if (!first_attach_done_) {
    // Initial association: configure the care-of address and register with
    // the MAP so correspondent traffic starts flowing.
    first_attach_done_ = true;
    current_ar_addr_ = ar_addr;
    pcoa_ = new_coa;
    node_.add_address(pcoa_, /*advertised=*/false);
    if (mip_ != nullptr) mip_->send_binding_update(pcoa_, cfg_.bu_lifetime);
    return;
  }

  ++counters_.handoffs;

  if (ar_addr == current_ar_addr_) {
    // §3.2.2.4: pure link-layer handoff under the same access router —
    // FNA+BF releases the locally buffered packets.
    ++counters_.intra_handoffs;
    if (cfg_.use_fast_handover) {
      FnaMsg fna;
      fna.mh = id();
      fna.has_bf = cfg_.request_buffers;
      ++counters_.fna_sent;
      node_.send(make_control(sim, pcoa_, current_ar_addr_, fna));
    }
    anticipated_ = false;
    target_ap_ = kNoNode;
    return;
  }

  // Inter-AR handover completed at the link layer.
  const Address old_ar = current_ar_addr_;
  node_.add_address(new_coa, /*advertised=*/false);

  if (cfg_.use_fast_handover) {
    if (!fbu_sent_on_old_link_) {
      // Non-anticipated handoff: FBU from the new link toward the PAR.
      ++counters_.non_anticipated;
      send_fbu(old_ar, ar_addr, /*from_new_link=*/true);
    }
    FnaMsg fna;
    fna.mh = id();
    fna.has_bf = cfg_.request_buffers;
    ++counters_.fna_sent;
    // FNA(+BF) never precedes the FBU on an inter-AR fast handover; the
    // non-anticipated branch above sends the FBU first.
    FHMIP_AUDIT("fastho", counters_.fbu_sent > 0);
    node_.send(make_control(sim, new_coa, ar_addr, fna));
  }

  // HMIPv6 local binding update: reroute the regional address to the new
  // LCoA at the MAP (§2.2.1 step 4).
  if (mip_ != nullptr) mip_->send_binding_update(new_coa, cfg_.bu_lifetime);

  current_ar_addr_ = ar_addr;
  pcoa_ = new_coa;
  anticipated_ = false;
  prrtadv_received_ = false;
  fbu_sent_on_old_link_ = false;
  target_ap_ = kNoNode;
}

void MhAgent::send_buffer_init(std::uint32_t size_pkts, SimTime start_time,
                               SimTime lifetime) {
  BiMsg m;
  m.mh = id();
  m.req.size_pkts = size_pkts;
  m.req.start_time = start_time;
  m.req.lifetime = lifetime;
  node_.send(make_control(node_.sim(), pcoa_, current_ar_addr_, m));
}

void MhAgent::send_buffer_forward(Address to_ar, Address forward_to) {
  BfMsg m;
  m.mh = id();
  m.forward_to = forward_to;
  node_.send(make_control(node_.sim(), pcoa_, to_ar, m));
}

}  // namespace fhmip
