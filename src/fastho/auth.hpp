#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/messages.hpp"

namespace fhmip {

/// Handover authentication (§5's third future-work item: "authentication
/// mechanism is required before the NAR accepts handoffs from mobile
/// hosts").
///
/// Model: each mobile host shares a symmetric key with the domain's access
/// routers (provisioned out of band, e.g. at AAA time). The host stamps its
/// RtSolPr with token = H(mh, key); the PAR copies it into the HI; the NAR
/// recomputes and compares before allocating buffers or installing the
/// PCoA host route. A missing/false token makes the NAR refuse the
/// handover assistance (the host can still attach at L2 and re-register,
/// it just gets no Fast Handover service).
class HandoverAuthenticator {
 public:
  /// Deterministic 64-bit mix of (mh, key) standing in for an HMAC.
  static std::uint64_t token(MhId mh, std::uint64_t key);

  void set_required(bool required) { required_ = required; }
  bool required() const { return required_; }

  /// Provisions the shared key for a host.
  void register_key(MhId mh, std::uint64_t key) { keys_[mh] = key; }
  void revoke(MhId mh) { keys_.erase(mh); }

  /// True when authentication passes (or is not required).
  bool verify(MhId mh, std::uint64_t presented) const;

  std::uint64_t accepted() const { return accepted_; }
  std::uint64_t rejected() const { return rejected_; }

 private:
  bool required_ = false;
  std::unordered_map<MhId, std::uint64_t> keys_;
  mutable std::uint64_t accepted_ = 0;
  mutable std::uint64_t rejected_ = 0;
};

}  // namespace fhmip
