#include "fastho/auth.hpp"

namespace fhmip {

std::uint64_t HandoverAuthenticator::token(MhId mh, std::uint64_t key) {
  // splitmix64 finalizer over the (mh, key) pair — a stand-in keyed MAC
  // with the right collision behaviour for simulation purposes.
  std::uint64_t z = key ^ (static_cast<std::uint64_t>(mh) * 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

bool HandoverAuthenticator::verify(MhId mh, std::uint64_t presented) const {
  if (!required_) {
    ++accepted_;
    return true;
  }
  auto it = keys_.find(mh);
  const bool ok = it != keys_.end() && token(mh, it->second) == presented;
  if (ok) {
    ++accepted_;
  } else {
    ++rejected_;
  }
  return ok;
}

}  // namespace fhmip
