#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace fhmip {

/// Retransmission/backoff policy for the Fast Handover control plane.
///
/// The base FMIPv6 protocol mandates FBU retransmission with exponential
/// backoff; the thesis's piggybacked buffer extensions inherit the same
/// rule (a lost BI/BR/BF rides on a lost carrier message). One policy
/// instance covers every retransmitted message: RtSolPr+BI, FBU and FNA+BF
/// on the MH, HI+BR on the PAR.
///
/// A message is sent, then resent after `rto`, `rto*backoff`,
/// `rto*backoff^2`, ... until it is acknowledged or `max_retries` resends
/// have been spent. Exhaustion triggers the degraded path: the MH falls
/// back to the reactive (non-anticipated, §2.3.2) handover, the PAR
/// answers the MH with an empty grant so no buffers are orphaned.
struct RetransmitPolicy {
  /// Master switch; false restores the seed's fire-and-forget signaling.
  bool enabled = true;
  /// Initial retransmission timeout. The default comfortably exceeds the
  /// worst control round trip in the paper topology (wireless 1 ms +
  /// inter-AR 2 ms each way plus transmission times).
  SimTime rto = SimTime::millis(40);
  /// Multiplier applied per resend (exponential backoff).
  double backoff = 2.0;
  /// Resends after the initial transmission (so max_retries + 1 sends).
  std::uint32_t max_retries = 4;

  /// Timeout armed after send number `attempt` (0 = the initial send).
  SimTime timeout_for(std::uint32_t attempt) const;
};

}  // namespace fhmip
