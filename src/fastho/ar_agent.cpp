#include "fastho/ar_agent.hpp"

#include "net/link.hpp"
#include "sim/check.hpp"

namespace fhmip {

ArAgent::ArAgent(Node& node, BufferSchemeConfig cfg, RetransmitPolicy rtx)
    : node_(node),
      cfg_(cfg),
      rtx_(rtx),
      buffers_(cfg.pool_pkts, cfg.allow_partial_grant, cfg.quota_pkts) {
  // Everything addressed into this router's subnet that is not the router
  // itself flows through the agent (LCoA delivery, handoff redirection).
  node_.routes().set_prefix_route(
      prefix(),
      Route::to([this](PacketPtr p) { handle_subnet_packet(std::move(p)); }));
  ctrl_id_ = node_.add_control_handler(
      [this](PacketPtr& p) { return handle_control(p); });
  Simulation& sim = node_.sim();
  buffers_.set_reap_period(cfg_.lease_reap_period);
  // The reaper is the backstop behind the per-context lifetime timers: if a
  // lease outlives its deadline (timer lost to a bug or tampering, context
  // torn down without release), its packets are flushed into an accounted
  // drop bucket and the context goes with it.
  buffers_.set_reap_handler([this](BufferManager::LeaseKey k) {
    const MhId mh = BufferManager::lease_mh(k);
    switch (BufferManager::lease_role(k)) {
      case ArRole::kPar:
        teardown_par(mh, DropReason::kLeaseReclaimed);
        break;
      case ArRole::kNar:
        teardown_nar(mh, DropReason::kLeaseReclaimed);
        break;
      case ArRole::kIntra:
        teardown_intra(mh, DropReason::kLeaseReclaimed);
        break;
    }
  });
  buffers_.set_observer(&sim, node_.name());
  obs::MetricsRegistry& m = sim.metrics();
  m_buffered_ = &m.counter("fastho/" + node_.name() + "/buffered_pkts");
  m_drained_ = &m.counter("fastho/" + node_.name() + "/drained_pkts");
  m_crashes_ = &m.counter("fastho/" + node_.name() + "/crashes");
}

ArAgent::~ArAgent() {
  while (!par_.empty()) teardown_par(par_.begin()->first);
  while (!nar_.empty()) teardown_nar(nar_.begin()->first);
  while (!intra_.empty()) teardown_intra(intra_.begin()->first);
  node_.routes().remove_prefix_route(prefix());
  node_.remove_control_handler(ctrl_id_);
}

void ArAgent::fault_reset() {
  ++counters_.crashes;
  m_crashes_->inc();
  while (!par_.empty()) {
    teardown_par(par_.begin()->first, DropReason::kFaultInjected);
  }
  while (!nar_.empty()) {
    teardown_nar(nar_.begin()->first, DropReason::kFaultInjected);
  }
  while (!intra_.empty()) {
    teardown_intra(intra_.begin()->first, DropReason::kFaultInjected);
  }
  rates_.clear();
  // Post-crash state must be indistinguishable from a freshly started
  // agent: no handover context of any kind survives.
  FHMIP_AUDIT("fastho", par_.empty() && nar_.empty() && intra_.empty());
}

bool ArAgent::par_redirecting(MhId mh) const {
  auto it = par_.find(mh);
  return it != par_.end() && it->second.redirecting;
}

void ArAgent::send_control(Address dst, MessageVariant m, std::uint32_t bytes) {
  node_.send(make_control(node_.sim(), address(), dst, std::move(m), bytes));
}

void ArAgent::drop(PacketPtr p, DropReason reason) {
  node_.sim().stats().record_drop(p->flow, reason);
  trace_packet(node_.sim(), TraceKind::kDrop, node_.name().c_str(), *p,
               reason);
  if (node_.sim().logger().enabled(LogLevel::kDebug)) {
    node_.sim().log(LogLevel::kDebug,
                    node_.name() + " AR-drop " +
                        std::string(message_name(p->msg)) + " seq=" +
                        std::to_string(p->seq) + " (" + to_string(reason) +
                        ")");
  }
}

// ---------------------------------------------------------------------------
// Control plane
// ---------------------------------------------------------------------------

bool ArAgent::handle_control(PacketPtr& p) {
  if (const auto* m = std::get_if<RtSolPrMsg>(&p->msg)) {
    on_rtsolpr(*m, p->src);
    return true;
  }
  if (const auto* m = std::get_if<HiMsg>(&p->msg)) {
    on_hi(*m);
    return true;
  }
  if (const auto* m = std::get_if<HackMsg>(&p->msg)) {
    on_hack(*m);
    return true;
  }
  if (const auto* m = std::get_if<FbuMsg>(&p->msg)) {
    on_fbu(*m);
    return true;
  }
  if (const auto* m = std::get_if<FnaMsg>(&p->msg)) {
    on_fna(*m, p->src);
    return true;
  }
  if (const auto* m = std::get_if<BfMsg>(&p->msg)) {
    on_bf(*m);
    return true;
  }
  if (const auto* m = std::get_if<BufferFullMsg>(&p->msg)) {
    on_buffer_full(*m);
    return true;
  }
  if (const auto* m = std::get_if<BiMsg>(&p->msg)) {
    on_bi(*m);
    return true;
  }
  if (std::get_if<FbackMsg>(&p->msg) != nullptr) {
    // FBAck copy sent toward the new link (we hold it for the MH; the MH
    // completes the handshake via the PCoA copy in this implementation).
    return true;
  }
  return false;
}

void ArAgent::on_rtsolpr(const RtSolPrMsg& m, Address src) {
  ++counters_.rtsolpr;
  Simulation& sim = node_.sim();
  Node* target_ar = ap_resolver_ ? ap_resolver_(m.target_ap) : nullptr;
  // The PCoA is the address the host actually uses on this subnet — taken
  // from the solicitation's source (it may be a collision substitute).
  const Address pcoa =
      src.net == prefix() ? src : make_coa(prefix(), m.mh);

  // A retransmission of the transaction a live context already answers:
  // re-elicit the cached advertisement (if any), never redo allocation.
  if (m.seq != kNoCtrlSeq) {
    if (auto iit = intra_.find(m.mh);
        iit != intra_.end() && iit->second.rtsolpr_seq == m.seq) {
      ++counters_.dup_rtsolpr;
      if (iit->second.adv_sent) {
        ++counters_.prrtadv_sent;
        node_.send(make_control(sim, address(), pcoa, iit->second.adv_msg));
      }
      return;
    }
    if (auto pit = par_.find(m.mh);
        pit != par_.end() && pit->second.rtsolpr_seq == m.seq) {
      ++counters_.dup_rtsolpr;
      if (pit->second.adv_sent) {
        ++counters_.prrtadv_sent;
        node_.send(
            make_control(sim, address(), pit->second.pcoa, pit->second.adv_msg));
      }
      // Otherwise the HI/HAck leg is still in flight and its own
      // retransmission timer recovers the answer.
      return;
    }
  }

  // Cancellation: start time and lifetime both zero (§3.2.2.1).
  if (m.has_bi && m.bi.lifetime.is_zero() && m.bi.start_time.is_zero() &&
      m.bi.size_pkts == 0) {
    teardown_par(m.mh);
    teardown_intra(m.mh);
    return;
  }

  if (target_ar == &node_ || target_ar == nullptr) {
    // §3.2.2.4 — pure link-layer handoff under this same router: allocate
    // locally and answer with PrRtAdv directly.
    ++counters_.intra_handoffs;
    teardown_intra(m.mh);
    IntraContext ctx;
    ctx.mh = m.mh;
    ctx.rtsolpr_seq = m.seq;
    if (m.has_bi) {
      const SimTime life =
          m.bi.lifetime.is_zero() ? cfg_.lifetime : m.bi.lifetime;
      ctx.grant = buffers_.allocate(BufferManager::key(m.mh, ArRole::kIntra),
                                    m.bi.size_pkts,
                                    sim.now() + life + cfg_.lease_grace);
      if (m.bi.start_time > sim.now()) {
        ctx.start_timer = sim.at(m.bi.start_time, [this, mh = m.mh] {
          auto it = intra_.find(mh);
          if (it != intra_.end()) it->second.buffering = true;
        });
      }
      ctx.lifetime_timer =
          sim.in(life, [this, mh = m.mh] { teardown_intra(mh); });
    }
    PrRtAdvMsg adv;
    adv.mh = m.mh;
    adv.intra_ar = true;
    adv.nar_node = node_.id();
    adv.nar_addr = address();
    adv.nar_prefix = prefix();
    adv.grant.par_ok = ctx.grant > 0;
    adv.grant.par_pkts = ctx.grant;
    adv.seq = m.seq;
    ctx.adv_msg = adv;
    ctx.adv_sent = true;
    intra_.emplace(m.mh, std::move(ctx));
    ++counters_.prrtadv_sent;
    node_.send(make_control(sim, address(), pcoa, adv));
    return;
  }

  // Inter-AR handover: open a PAR context and negotiate with the NAR.
  teardown_par(m.mh);
  ParContext ctx;
  ctx.mh = m.mh;
  ctx.pcoa = pcoa;
  ctx.nar_addr = target_ar->address();
  ctx.rtsolpr_seq = m.seq;
  ctx.request = m.has_bi ? m.bi : BufferRequest{};
  if (cfg_.adaptive_request && m.has_bi && ctx.request.size_pkts > 0) {
    // Precise allocation (§5): replace the host's blanket request with the
    // observed downstream rate over the expected disconnection, clamped to
    // [min_request, requested].
    std::uint32_t est = cfg_.min_request_pkts;
    if (auto it = rates_.find(m.mh); it != rates_.end()) {
      est = std::max(est, it->second.packets_in(cfg_.expected_blackout,
                                                sim.now()));
    }
    ctx.request.size_pkts = std::min(est, ctx.request.size_pkts);
  }
  if (ctx.request.start_time > sim.now()) {
    // Safety valve for fast-moving hosts: buffering starts even if the FBU
    // never arrives on the old link.
    ctx.start_timer = sim.at(ctx.request.start_time, [this, mh = m.mh] {
      auto it = par_.find(mh);
      if (it != par_.end()) it->second.redirecting = true;
    });
  }
  const SimTime life =
      ctx.request.lifetime.is_zero() ? cfg_.lifetime : ctx.request.lifetime;
  ctx.lease_deadline = sim.now() + life + cfg_.lease_grace;
  ctx.lifetime_timer = sim.in(life, [this, mh = m.mh] { teardown_par(mh); });

  HiMsg hi;
  hi.mh = m.mh;
  hi.pcoa = pcoa;
  hi.ncoa = make_coa(ctx.nar_addr.net, m.mh);
  hi.par_addr = address();
  const bool nar_buffering =
      cfg_.mode == BufferMode::kNarOnly || cfg_.mode == BufferMode::kDual;
  if (m.has_bi && nar_buffering) {
    hi.br = ctx.request;
    hi.has_br = true;
  }
  hi.auth_token = m.auth_token;
  hi.seq = ++next_seq_;
  ctx.hi_msg = hi;
  ctx.hi_sends = 1;
  const Address nar = ctx.nar_addr;
  if (rtx_.enabled) {
    ctx.hi_timer =
        sim.in(rtx_.timeout_for(0), [this, mh = m.mh] { hi_timeout(mh); });
  }
  par_[m.mh] = std::move(ctx);
  ++counters_.hi_sent;
  sim.timeline().record(sim.now(), m.mh, obs::HoEventKind::kHiSent,
                        node_.name());
  send_control(nar, hi);
}

void ArAgent::hi_timeout(MhId mh) {
  auto it = par_.find(mh);
  if (it == par_.end()) return;
  ParContext& ctx = it->second;
  ctx.hi_timer = kInvalidEvent;
  if (ctx.hack_received || ctx.hi_exhausted) return;
  if (ctx.hi_sends > rtx_.max_retries) {
    // The NAR never answered. Give up on the negotiation and report an
    // empty grant so the host falls back cleanly (reactive path). Nothing
    // is orphaned on the NAR's behalf: it only allocates on HI receipt,
    // and any allocation from a one-way-lost HAck is reclaimed by its
    // lifetime timer.
    ++counters_.hi_exhausted;
    ctx.hi_exhausted = true;
    ctx.nar_rejected = true;
    PrRtAdvMsg adv;
    adv.mh = mh;
    adv.nar_addr = ctx.nar_addr;
    adv.nar_prefix = ctx.nar_addr.net;
    adv.seq = ctx.rtsolpr_seq;
    ctx.adv_msg = adv;
    ctx.adv_sent = true;
    ++counters_.prrtadv_sent;
    node_.send(make_control(node_.sim(), address(), ctx.pcoa, adv));
    return;
  }
  ++counters_.hi_rtx;
  send_control(ctx.nar_addr, ctx.hi_msg);
  ++ctx.hi_sends;
  ctx.hi_timer = node_.sim().in(rtx_.timeout_for(ctx.hi_sends - 1),
                                [this, mh] { hi_timeout(mh); });
}

void ArAgent::on_hi(const HiMsg& m) {
  ++counters_.hi_received;
  // A retransmitted HI re-elicits the cached HAck — it must NOT tear down
  // and re-allocate the context the first copy built (double-allocation).
  if (m.seq != kNoCtrlSeq) {
    if (auto it = nar_.find(m.mh);
        it != nar_.end() && it->second.hi_seq == m.seq) {
      ++counters_.dup_hi;
      ++counters_.hack_sent;
      send_control(m.par_addr, it->second.hack_msg);
      return;
    }
  }
  if (!auth_.verify(m.mh, m.auth_token)) {
    // §5: the NAR refuses unauthenticated handovers — no buffer, no host
    // route, no tunnel endpoint. The host may still attach at L2 and
    // re-register the slow way.
    HackMsg hack;
    hack.mh = m.mh;
    hack.accepted = false;
    hack.seq = m.seq;
    ++counters_.hack_sent;
    send_control(m.par_addr, hack);
    return;
  }
  teardown_nar(m.mh);
  NarContext ctx;
  ctx.mh = m.mh;
  ctx.pcoa = m.pcoa;
  ctx.par_addr = m.par_addr;
  ctx.hi_seq = m.seq;
  ctx.mh_here = attached_.count(m.mh) > 0;
  // Validate the proposed NCoA against addresses already in use on this
  // subnet; a collision gets the next free interface identifier.
  Address ncoa = m.ncoa.valid() ? m.ncoa : make_coa(prefix(), m.mh);
  if (reserved_hosts_.count(ncoa.host) > 0) {
    ++ncoa_collisions_;
    // Re-use a previously assigned substitute for this host, if any — the
    // assignment is an address lease that outlives the handover context.
    std::uint32_t host = 0;
    for (const auto& [h, owner] : host_alias_) {
      if (owner == m.mh) {
        host = h;
        break;
      }
    }
    if (host == 0) {
      host = ncoa.host;
      while (reserved_hosts_.count(host) > 0 || host_alias_.count(host) > 0) {
        host += 100'000;  // outside the node-id space
      }
      host_alias_[host] = m.mh;
    }
    ncoa = make_coa(prefix(), host);
  }
  const SimTime life =
      (m.has_br && !m.br.lifetime.is_zero()) ? m.br.lifetime : cfg_.lifetime;
  if (m.has_br) {
    Simulation& sim = node_.sim();
    ctx.grant = buffers_.allocate(BufferManager::key(m.mh, ArRole::kNar),
                                  m.br.size_pkts,
                                  sim.now() + life + cfg_.lease_grace);
    // BA grants never exceed the BR request, even with partial grants.
    FHMIP_AUDIT_MSG("fastho", ctx.grant <= m.br.size_pkts,
                    "granted " + std::to_string(ctx.grant) + " of " +
                        std::to_string(m.br.size_pkts));
    if (m.br.size_pkts > 0) {
      // Export the admission decision: did pool pressure shrink or refuse
      // this BR? The grant itself travels back in the HAck(+BA).
      const obs::HoEventKind kind =
          ctx.grant == 0            ? obs::HoEventKind::kBufferDeny
          : ctx.grant < m.br.size_pkts ? obs::HoEventKind::kBufferShrink
                                       : obs::HoEventKind::kBufferGrant;
      sim.timeline().record(sim.now(), m.mh, kind, node_.name());
    }
  }
  ctx.lifetime_timer =
      node_.sim().in(life, [this, mh = m.mh] { teardown_nar(mh); });
  // Host route for the PCoA: packets tunneled here with the old address
  // must not bounce back toward the PAR's subnet.
  node_.routes().set_host_route(
      m.pcoa,
      Route::to([this](PacketPtr p) { handle_subnet_packet(std::move(p)); }));

  HackMsg hack;
  hack.mh = m.mh;
  hack.accepted = true;
  hack.ncoa = ncoa;
  hack.granted_pkts = ctx.grant;
  hack.buffer_ok = ctx.grant > 0;
  hack.seq = m.seq;
  ctx.hack_msg = hack;
  nar_[m.mh] = std::move(ctx);
  ++counters_.hack_sent;
  send_control(m.par_addr, hack);
}

void ArAgent::on_hack(const HackMsg& m) {
  ++counters_.hack_received;
  // HAck(+BA) answers HI(+BR): it can never precede the first HI.
  FHMIP_AUDIT("fastho", counters_.hi_sent > 0);
  auto it = par_.find(m.mh);
  if (it == par_.end()) return;
  ParContext& ctx = it->second;
  // A sequenced answer for a transaction other than the live HI is a stale
  // echo of a torn-down negotiation; a repeat for the live one is the NAR
  // answering a retransmitted HI. Neither may be processed twice.
  if (m.seq != kNoCtrlSeq && ctx.hi_msg.seq != kNoCtrlSeq &&
      m.seq != ctx.hi_msg.seq) {
    return;
  }
  if (ctx.hack_received) {
    ++counters_.dup_hack;
    return;
  }
  if (ctx.hi_timer != kInvalidEvent) {
    node_.sim().cancel(ctx.hi_timer);
    ctx.hi_timer = kInvalidEvent;
  }
  if (ctx.hi_exhausted) {
    // The answer limped in after the retries gave up; accept it and let
    // the fresh advertisement below overwrite the empty grant.
    ctx.hi_exhausted = false;
    ctx.nar_rejected = false;
  }
  ctx.hack_received = true;
  node_.sim().timeline().record(node_.sim().now(), m.mh,
                                obs::HoEventKind::kHackRecv, node_.name());
  ctx.nar_grant = m.buffer_ok ? m.granted_pkts : 0;
  if (!m.accepted) {
    // The NAR refused the handover (authentication): no tunnel exists, so
    // the PAR must not redirect or buffer — the host gets a plain, lossy
    // handoff. Report the empty grant.
    ctx.nar_rejected = true;
    PrRtAdvMsg adv;
    adv.mh = m.mh;
    adv.nar_addr = ctx.nar_addr;
    adv.nar_prefix = ctx.nar_addr.net;
    adv.seq = ctx.rtsolpr_seq;
    ctx.adv_msg = adv;
    ctx.adv_sent = true;
    ++counters_.prrtadv_sent;
    node_.send(make_control(node_.sim(), address(), ctx.pcoa, adv));
    return;
  }

  // PAR-side allocation policy: with classification on, the PAR's share is
  // needed for best-effort and high-priority overflow (Table 3.3 cases
  // 1.b/1.c/3.b/3.c); with it off the PAR buffer is the backup used when
  // the NAR denied — this is what lets the network as a whole serve twice
  // the handoffs (Figure 4.2).
  const bool par_buffering =
      cfg_.mode == BufferMode::kParOnly || cfg_.mode == BufferMode::kDual;
  if (par_buffering && ctx.request.size_pkts > 0) {
    const bool need_local = cfg_.mode == BufferMode::kParOnly ||
                            cfg_.classify || ctx.nar_grant == 0;
    if (need_local) {
      ctx.par_grant =
          buffers_.allocate(BufferManager::key(m.mh, ArRole::kPar),
                            ctx.request.size_pkts, ctx.lease_deadline);
      const obs::HoEventKind kind =
          ctx.par_grant == 0 ? obs::HoEventKind::kBufferDeny
          : ctx.par_grant < ctx.request.size_pkts
              ? obs::HoEventKind::kBufferShrink
              : obs::HoEventKind::kBufferGrant;
      node_.sim().timeline().record(node_.sim().now(), m.mh, kind,
                                    node_.name());
    }
  }

  PrRtAdvMsg adv;
  adv.mh = m.mh;
  adv.nar_node = kNoNode;
  adv.nar_addr = ctx.nar_addr;
  adv.nar_prefix = ctx.nar_addr.net;
  adv.ncoa = m.ncoa;
  adv.grant.nar_ok = ctx.nar_grant > 0;
  adv.grant.nar_pkts = ctx.nar_grant;
  adv.grant.par_ok = ctx.par_grant > 0;
  adv.grant.par_pkts = ctx.par_grant;
  adv.seq = ctx.rtsolpr_seq;
  ctx.adv_msg = adv;
  ctx.adv_sent = true;
  ++counters_.prrtadv_sent;
  node_.send(make_control(node_.sim(), address(), ctx.pcoa, adv));
}

void ArAgent::send_fback(const ParContext& ctx, CtrlSeq seq,
                         bool from_new_link) {
  FbackMsg fb;
  fb.mh = ctx.mh;
  fb.ok = true;
  fb.seq = seq;
  ++counters_.fback_sent;
  // FBAck to the (possibly gone) old link and a copy toward the new link.
  node_.send(make_control(node_.sim(), address(), ctx.pcoa, fb));
  // A reactive FBU means the host already sits on the NAR's subnet with no
  // PCoA host route there — address the copy to its new care-of address so
  // it actually arrives (the anticipated-path copy to the router itself is
  // held informationally, the PCoA copy rides the tunnel).
  send_control(from_new_link ? make_coa(ctx.nar_addr.net, ctx.mh)
                             : ctx.nar_addr,
               fb);
}

void ArAgent::on_fbu(const FbuMsg& m) {
  // Intra-AR (link-layer) handoff: start buffering locally (§3.2.2.4).
  if (auto iit = intra_.find(m.mh); iit != intra_.end()) {
    IntraContext& ctx = iit->second;
    if (m.seq != kNoCtrlSeq && ctx.last_fbu_seq == m.seq) {
      ++counters_.dup_fbu;
    } else {
      ++counters_.fbu;
      ctx.last_fbu_seq = m.seq;
    }
    ctx.buffering = true;
    FbackMsg fb;
    fb.mh = m.mh;
    fb.ok = true;
    fb.seq = m.seq;
    ++counters_.fback_sent;
    send_control(make_coa(prefix(), m.mh), fb);
    return;
  }
  auto it = par_.find(m.mh);
  if (it == par_.end()) {
    // Non-anticipated handoff: the FBU arrives via the new link with no
    // prepared context — redirect with no buffers (Table 3.2 case 4).
    ++counters_.fbu;
    if (!m.nar_addr.valid()) return;
    ParContext ctx;
    ctx.mh = m.mh;
    ctx.pcoa = m.pcoa.valid() ? m.pcoa : make_coa(prefix(), m.mh);
    ctx.nar_addr = m.nar_addr;
    ctx.redirecting = true;
    ctx.last_fbu_seq = m.seq;
    ctx.lease_deadline = node_.sim().now() + cfg_.lifetime + cfg_.lease_grace;
    ctx.lifetime_timer =
        node_.sim().in(cfg_.lifetime, [this, mh = m.mh] { teardown_par(mh); });
    it = par_.emplace(m.mh, std::move(ctx)).first;
  } else if (m.seq != kNoCtrlSeq && it->second.last_fbu_seq == m.seq) {
    // Retransmission: the binding is already in place, just re-answer.
    ++counters_.dup_fbu;
    send_fback(it->second, m.seq, m.from_new_link);
    return;
  } else {
    ++counters_.fbu;
    it->second.last_fbu_seq = m.seq;
  }
  ParContext& ctx = it->second;
  ctx.redirecting = true;
  // The FBU proves the MH is alive and committed to this handover: push the
  // PAR-side lease deadline out (renewal piggybacked on the exchange — the
  // lifetime timer still owns the graceful teardown).
  ctx.lease_deadline = node_.sim().now() + cfg_.lifetime + cfg_.lease_grace;
  buffers_.renew(BufferManager::key(m.mh, ArRole::kPar), ctx.lease_deadline);
  if (ctx.start_timer != kInvalidEvent) {
    node_.sim().cancel(ctx.start_timer);
    ctx.start_timer = kInvalidEvent;
  }
  send_fback(ctx, m.seq, m.from_new_link);
}

void ArAgent::on_fna(const FnaMsg& m, Address src) {
  ++counters_.fna;
  // RFC 5568's NAACK analog: acknowledge sequenced announcements so the
  // host stops retransmitting (unsequenced FNAs keep the legacy
  // fire-and-forget behavior).
  if (m.seq != kNoCtrlSeq) {
    FnaAckMsg ack;
    ack.mh = m.mh;
    ack.seq = m.seq;
    ++counters_.fna_ack_sent;
    send_control(src.valid() ? src : make_coa(prefix(), m.mh), ack);
  }
  if (auto iit = intra_.find(m.mh); iit != intra_.end()) {
    IntraContext& ctx = iit->second;
    if (m.seq != kNoCtrlSeq && ctx.last_fna_seq == m.seq) {
      ++counters_.dup_fna;
    } else {
      ctx.last_fna_seq = m.seq;
    }
    ctx.buffering = false;
    if (m.has_bf) drain_intra(m.mh);
    return;
  }
  auto it = nar_.find(m.mh);
  if (it == nar_.end()) return;
  NarContext& ctx = it->second;
  if (m.seq != kNoCtrlSeq && ctx.last_fna_seq == m.seq) {
    ++counters_.dup_fna;
  } else {
    ctx.last_fna_seq = m.seq;
  }
  ctx.mh_here = true;
  // FNA = the MH arrived at this NAR; renew the buffer lease so the drain
  // (paced by drain_gap) can never race the reaper.
  buffers_.renew(BufferManager::key(m.mh, ArRole::kNar),
                 node_.sim().now() + cfg_.lifetime + cfg_.lease_grace);
  if (m.has_bf) {
    BfMsg bf;
    bf.mh = m.mh;
    ++counters_.bf_sent;
    node_.sim().timeline().record(node_.sim().now(), m.mh,
                                  obs::HoEventKind::kBfSent, node_.name());
    // BF toward the PAR is only ever triggered by an FNA from the MH. A
    // duplicate FNA re-sends the BF (the previous copy may be the loss
    // that caused the retransmission); the drain entry point is
    // idempotent, so no second drain chain can start.
    FHMIP_AUDIT("fastho", counters_.bf_sent <= counters_.fna);
    send_control(ctx.par_addr, bf);
    drain_nar(m.mh);
  }
}

void ArAgent::on_bf(const BfMsg& m) {
  ++counters_.bf_received;
  if (auto it = intra_.find(m.mh); it != intra_.end()) {
    it->second.buffering = false;
    it->second.forward_to = m.forward_to;
    drain_intra(m.mh);
    return;
  }
  auto it = par_.find(m.mh);
  if (it == par_.end()) return;
  it->second.bf_received = true;
  drain_par(m.mh);
}

void ArAgent::on_buffer_full(const BufferFullMsg& m) {
  ++counters_.buffer_full_received;
  auto it = par_.find(m.mh);
  if (it != par_.end()) it->second.nar_full = true;
}

void ArAgent::on_bi(const BiMsg& m) {
  // Standalone smooth-handover baseline (§2.4): allocate, acknowledge, and
  // buffer from start_time (or immediately) until BF.
  teardown_intra(m.mh);
  Simulation& sim = node_.sim();
  IntraContext ctx;
  ctx.mh = m.mh;
  const SimTime life =
      m.req.lifetime.is_zero() ? cfg_.lifetime : m.req.lifetime;
  ctx.grant = buffers_.allocate(BufferManager::key(m.mh, ArRole::kIntra),
                                m.req.size_pkts,
                                sim.now() + life + cfg_.lease_grace);
  if (m.req.size_pkts > 0) {
    const obs::HoEventKind kind =
        ctx.grant == 0                ? obs::HoEventKind::kBufferDeny
        : ctx.grant < m.req.size_pkts ? obs::HoEventKind::kBufferShrink
                                      : obs::HoEventKind::kBufferGrant;
    sim.timeline().record(sim.now(), m.mh, kind, node_.name());
  }
  if (m.req.start_time > sim.now()) {
    ctx.start_timer = sim.at(m.req.start_time, [this, mh = m.mh] {
      auto it = intra_.find(mh);
      if (it != intra_.end()) it->second.buffering = true;
    });
  } else {
    ctx.buffering = ctx.grant > 0;
  }
  ctx.lifetime_timer = sim.in(life, [this, mh = m.mh] { teardown_intra(mh); });
  BaMsg ba;
  ba.mh = m.mh;
  ba.ok = ctx.grant > 0;
  ba.granted_pkts = ctx.grant;
  intra_[m.mh] = std::move(ctx);
  node_.send(make_control(sim, address(), make_coa(prefix(), m.mh), ba));
}

// ---------------------------------------------------------------------------
// Data plane
// ---------------------------------------------------------------------------

void ArAgent::handle_subnet_packet(PacketPtr p) {
  MhId mh = p->dst.host;
  if (auto alias = host_alias_.find(p->dst.host);
      alias != host_alias_.end()) {
    mh = alias->second;  // substituted NCoA (collision avoidance)
  }

  if (auto it = nar_.find(mh); it != nar_.end()) {
    nar_handle(it->second, std::move(p));
    return;
  }
  if (auto it = intra_.find(mh); it != intra_.end()) {
    IntraContext& ctx = it->second;
    const bool attached = attached_.count(mh) > 0;
    HandoffBuffer* buf =
        buffers_.buffer(BufferManager::key(mh, ArRole::kIntra));
    // Buffering is active from the FBU / BI start until BF, regardless of
    // attachment — the smooth-handover baseline buffers while the host is
    // still on the link (§2.4 step III).
    const bool hold = ctx.buffering;
    const bool keep_order = ctx.draining && buf != nullptr && !buf->empty();
    if ((hold || keep_order) && buf != nullptr) {
      if (buf->push(p) == HandoffBuffer::PushResult::kStored) {
        { ++counters_.buffered_local; m_buffered_->inc(); }
      } else {
        drop(std::move(p), DropReason::kBufferTailDrop);
      }
      return;
    }
    if (attached) {
      deliver(mh, std::move(p));
    } else {
      drop(std::move(p), DropReason::kUnattached);
    }
    return;
  }
  if (auto it = par_.find(mh); it != par_.end() && it->second.redirecting) {
    par_redirect(it->second, std::move(p));
    return;
  }
  if (attached_.count(mh) > 0) {
    deliver(mh, std::move(p));
    return;
  }
  drop(std::move(p), DropReason::kUnattached);
}

void ArAgent::par_redirect(ParContext& ctx, PacketPtr p) {
  // Redirection only happens after the FBU (or the start-time safety valve)
  // flipped the context on; a packet arriving here earlier is a routing bug.
  FHMIP_AUDIT("fastho", ctx.redirecting);
  ++counters_.redirected;
  if (ctx.nar_rejected) {
    // No tunnel endpoint exists at the NAR: the packet has nowhere to go
    // while the host is detached (and routing recovers after the binding
    // update once the host reattaches).
    drop(std::move(p), DropReason::kUnattached);
    return;
  }
  if (p->directive == ForwardDirective::kBounceToPar) {
    // The NAR's buffer overflowed and sent this packet back (Case 1.b):
    // buffer it here or lose it — re-forwarding would ping-pong.
    p->directive = ForwardDirective::kNone;
    par_buffer_local(ctx, std::move(p));
    return;
  }
  if (ctx.bf_received) {
    // The MH is up at the NAR and buffers were released: plain forwarding
    // through the tunnel until the binding update reroutes traffic.
    tunnel_to(ctx.nar_addr, ForwardDirective::kForwardOnly, std::move(p));
    return;
  }
  const AllocationCase alloc{ctx.nar_grant > 0, ctx.par_grant > 0};
  switch (decide_buffering(cfg_, alloc, p->tclass)) {
    case BufferAction::kBufferAtNar:
      tunnel_to(ctx.nar_addr, ForwardDirective::kBufferAtNar, std::move(p));
      return;
    case BufferAction::kBufferAtBoth:
      if (!ctx.nar_full) {
        tunnel_to(ctx.nar_addr, ForwardDirective::kBufferAtNar, std::move(p));
      } else {
        par_buffer_local(ctx, std::move(p));
      }
      return;
    case BufferAction::kBufferAtParIfHeadroom: {
      HandoffBuffer* buf =
          buffers_.buffer(BufferManager::key(ctx.mh, ArRole::kPar));
      if (buf != nullptr && buf->free_slots() > cfg_.reserve_a) {
        if (buf->push(p) == HandoffBuffer::PushResult::kStored) {
          { ++counters_.buffered_local; m_buffered_->inc(); }
          return;
        }
      }
      drop(std::move(p), DropReason::kPolicyDrop);
      return;
    }
    case BufferAction::kBufferAtPar:
      par_buffer_local(ctx, std::move(p));
      return;
    case BufferAction::kForwardOnly:
      tunnel_to(ctx.nar_addr, ForwardDirective::kForwardOnly, std::move(p));
      return;
    case BufferAction::kDrop:
      drop(std::move(p), DropReason::kPolicyDrop);
      return;
  }
}

void ArAgent::par_buffer_local(ParContext& ctx, PacketPtr p) {
  const auto k = BufferManager::key(ctx.mh, ArRole::kPar);
  HandoffBuffer* buf = buffers_.buffer(k);
  if (buf == nullptr) {
    // The NAR filled up and we never held a lease (class-disabled backup
    // path): allocate one now if the pool allows it.
    const std::uint32_t want =
        ctx.request.size_pkts > 0 ? ctx.request.size_pkts : cfg_.request_pkts;
    ctx.par_grant = buffers_.allocate(k, want, ctx.lease_deadline);
    buf = buffers_.buffer(k);
  }
  if (buf == nullptr || buf->push(p) != HandoffBuffer::PushResult::kStored) {
    drop(std::move(p), DropReason::kBufferTailDrop);
    return;
  }
  { ++counters_.buffered_local; m_buffered_->inc(); }
}

void ArAgent::nar_handle(NarContext& ctx, PacketPtr p) {
  if (ctx.mh_here) {
    // Preserve ordering while a drain is in progress: arrivals meant for
    // the buffer join the back of it instead of overtaking.
    HandoffBuffer* buf =
        buffers_.buffer(BufferManager::key(ctx.mh, ArRole::kNar));
    if (ctx.draining && buf != nullptr && !buf->empty() &&
        p->directive == ForwardDirective::kBufferAtNar) {
      if (buf->push(p) == HandoffBuffer::PushResult::kStored) {
        { ++counters_.buffered_local; m_buffered_->inc(); }
        return;
      }
    }
    deliver(ctx.mh, std::move(p));
    return;
  }
  switch (p->directive) {
    case ForwardDirective::kBufferAtNar:
      nar_buffer(ctx, std::move(p));
      return;
    default:
      // Forward-only traffic (and anything unmarked) is lost while the MH
      // is detached — exactly the loss the buffering exists to prevent.
      drop(std::move(p), DropReason::kUnattached);
      return;
  }
}

void ArAgent::nar_buffer(NarContext& ctx, PacketPtr p) {
  // No buffering after FNA: once the MH announced itself, arrivals are
  // delivered (or appended to a live drain), never parked in the buffer.
  FHMIP_AUDIT("fastho", !ctx.mh_here);
  HandoffBuffer* buf =
      buffers_.buffer(BufferManager::key(ctx.mh, ArRole::kNar));
  if (buf == nullptr) {
    drop(std::move(p), DropReason::kUnattached);
    return;
  }
  const TrafficClass cls = effective_class(p->tclass);
  if (cfg_.classify && cls == TrafficClass::kRealTime) {
    // Case 1.a/2.a: "if buffer full, drop the first real-time packet".
    PacketPtr evicted;
    switch (buf->push_evict_oldest_realtime(p, evicted)) {
      case HandoffBuffer::PushResult::kStored:
        { ++counters_.buffered_local; m_buffered_->inc(); }
        return;
      case HandoffBuffer::PushResult::kStoredEvicting:
        { ++counters_.buffered_local; m_buffered_->inc(); }
        drop(std::move(evicted), DropReason::kBufferFrontDrop);
        return;
      case HandoffBuffer::PushResult::kRejected:
        drop(std::move(p), DropReason::kBufferTailDrop);
        return;
    }
    return;
  }
  if (buf->push(p) == HandoffBuffer::PushResult::kStored) {
    { ++counters_.buffered_local; m_buffered_->inc(); }
    return;
  }
  // Buffer full. High-priority packets (or any packet in class-disabled
  // dual mode) switch to PAR-side buffering: signal Buffer Full once and
  // bounce the packet back (Case 1.b — "the PAR buffers the rest").
  const bool dual_path =
      cfg_.mode == BufferMode::kDual &&
      (!cfg_.classify || cls == TrafficClass::kHighPriority);
  if (dual_path) {
    if (!ctx.full_signalled) {
      ctx.full_signalled = true;
      BufferFullMsg full;
      full.mh = ctx.mh;
      ++counters_.buffer_full_sent;
      send_control(ctx.par_addr, full);
    }
    ++counters_.bounced;
    tunnel_to(ctx.par_addr, ForwardDirective::kBounceToPar, std::move(p));
    return;
  }
  drop(std::move(p), DropReason::kBufferTailDrop);
}

void ArAgent::deliver(MhId mh, PacketPtr p) {
  auto it = attached_.find(mh);
  if (it == attached_.end()) {
    drop(std::move(p), DropReason::kUnattached);
    return;
  }
  if (!p->is_control()) rates_[mh].on_packet(node_.sim().now());
  p->directive = ForwardDirective::kNone;
  ++counters_.delivered_wireless;
  it->second->transmit(std::move(p));
}

double ArAgent::estimated_pps(MhId mh) const {
  auto it = rates_.find(mh);
  return it == rates_.end() ? 0.0
                            : it->second.rate_pps(node_.sim().now());
}

void ArAgent::tunnel_to(Address ar, ForwardDirective d, PacketPtr p) {
  p->directive = d;
  p->encapsulate(ar);
  node_.send(std::move(p));
}

// ---------------------------------------------------------------------------
// Buffer release (§3.2.2.3)
// ---------------------------------------------------------------------------

void ArAgent::drain_par(MhId mh) {
  auto it = par_.find(mh);
  if (it == par_.end() || it->second.draining) return;
  it->second.draining = true;
  node_.sim().timeline().record(node_.sim().now(), mh,
                                obs::HoEventKind::kDrainStart, node_.name());
  drain_par_step(mh);
}

void ArAgent::drain_par_step(MhId mh) {
  auto it = par_.find(mh);
  if (it == par_.end()) return;
  ParContext& ctx = it->second;
  if (!ctx.draining) return;  // chain was stopped (teardown + re-create)
  const auto k = BufferManager::key(mh, ArRole::kPar);
  HandoffBuffer* buf = buffers_.buffer(k);
  if (buf == nullptr || buf->empty()) {
    ctx.draining = false;
    buffers_.release(k);
    ctx.par_grant = 0;
    node_.sim().timeline().record(node_.sim().now(), mh,
                                  obs::HoEventKind::kDrainEnd, node_.name());
    return;
  }
  PacketPtr p = buf->pop();
  { ++counters_.drained; m_drained_->inc(); }
  tunnel_to(ctx.nar_addr, ForwardDirective::kDrain, std::move(p));
  node_.sim().in(cfg_.drain_gap, [this, mh] { drain_par_step(mh); });
}

void ArAgent::drain_nar(MhId mh) {
  auto it = nar_.find(mh);
  if (it == nar_.end() || it->second.draining) return;
  it->second.draining = true;
  node_.sim().timeline().record(node_.sim().now(), mh,
                                obs::HoEventKind::kDrainStart, node_.name());
  drain_nar_step(mh);
}

void ArAgent::drain_nar_step(MhId mh) {
  auto it = nar_.find(mh);
  if (it == nar_.end()) return;
  NarContext& ctx = it->second;
  if (!ctx.draining) return;  // chain was stopped (teardown + re-create)
  // The NAR only releases its buffer once the MH has arrived (FNA+BF).
  FHMIP_AUDIT("fastho", ctx.mh_here);
  const auto k = BufferManager::key(mh, ArRole::kNar);
  HandoffBuffer* buf = buffers_.buffer(k);
  if (buf == nullptr || buf->empty()) {
    ctx.draining = false;
    buffers_.release(k);
    ctx.grant = 0;
    node_.sim().timeline().record(node_.sim().now(), mh,
                                  obs::HoEventKind::kDrainEnd, node_.name());
    return;
  }
  PacketPtr p = buf->pop();
  { ++counters_.drained; m_drained_->inc(); }
  deliver(mh, std::move(p));
  node_.sim().in(cfg_.drain_gap, [this, mh] { drain_nar_step(mh); });
}

void ArAgent::drain_intra(MhId mh) {
  auto it = intra_.find(mh);
  if (it == intra_.end() || it->second.draining) return;
  it->second.draining = true;
  node_.sim().timeline().record(node_.sim().now(), mh,
                                obs::HoEventKind::kDrainStart, node_.name());
  drain_intra_step(mh);
}

void ArAgent::drain_intra_step(MhId mh) {
  auto it = intra_.find(mh);
  if (it == intra_.end()) return;
  IntraContext& ctx = it->second;
  if (!ctx.draining) return;  // chain was stopped (teardown + re-create)
  const auto k = BufferManager::key(mh, ArRole::kIntra);
  HandoffBuffer* buf = buffers_.buffer(k);
  if (buf == nullptr || buf->empty()) {
    ctx.draining = false;
    buffers_.release(k);
    ctx.grant = 0;
    node_.sim().timeline().record(node_.sim().now(), mh,
                                  obs::HoEventKind::kDrainEnd, node_.name());
    return;
  }
  PacketPtr p = buf->pop();
  { ++counters_.drained; m_drained_->inc(); }
  if (ctx.forward_to.valid()) {
    // Smooth-handover baseline: tunnel to the MH's new care-of address.
    p->directive = ForwardDirective::kNone;
    p->encapsulate(ctx.forward_to);
    node_.send(std::move(p));
  } else {
    deliver(mh, std::move(p));
  }
  node_.sim().in(cfg_.drain_gap, [this, mh] { drain_intra_step(mh); });
}

// ---------------------------------------------------------------------------
// Context teardown
// ---------------------------------------------------------------------------

void ArAgent::teardown_par(MhId mh, DropReason reason) {
  auto it = par_.find(mh);
  if (it == par_.end()) return;
  ParContext& ctx = it->second;
  node_.sim().cancel(ctx.start_timer);
  node_.sim().cancel(ctx.lifetime_timer);
  if (ctx.hi_timer != kInvalidEvent) node_.sim().cancel(ctx.hi_timer);
  const auto k = BufferManager::key(mh, ArRole::kPar);
  if (HandoffBuffer* buf = buffers_.buffer(k)) {
    buf->flush(
        [this, reason](PacketPtr p) { drop(std::move(p), reason); });
  }
  buffers_.release(k);
  par_.erase(it);
}

void ArAgent::teardown_nar(MhId mh, DropReason reason) {
  auto it = nar_.find(mh);
  if (it == nar_.end()) return;
  NarContext& ctx = it->second;
  node_.sim().cancel(ctx.lifetime_timer);
  node_.routes().remove_host_route(ctx.pcoa);
  const auto k = BufferManager::key(mh, ArRole::kNar);
  if (HandoffBuffer* buf = buffers_.buffer(k)) {
    buf->flush(
        [this, reason](PacketPtr p) { drop(std::move(p), reason); });
  }
  buffers_.release(k);
  nar_.erase(it);
}

void ArAgent::teardown_intra(MhId mh, DropReason reason) {
  auto it = intra_.find(mh);
  if (it == intra_.end()) return;
  IntraContext& ctx = it->second;
  node_.sim().cancel(ctx.start_timer);
  node_.sim().cancel(ctx.lifetime_timer);
  const auto k = BufferManager::key(mh, ArRole::kIntra);
  if (HandoffBuffer* buf = buffers_.buffer(k)) {
    buf->flush(
        [this, reason](PacketPtr p) { drop(std::move(p), reason); });
  }
  buffers_.release(k);
  intra_.erase(it);
}

// ---------------------------------------------------------------------------
// Attachment events from the WLAN layer
// ---------------------------------------------------------------------------

void ArAgent::on_mh_attached(MhId mh, NodeId /*ap*/, SimplexLink& downlink) {
  attached_[mh] = &downlink;
  if (auto it = nar_.find(mh); it != nar_.end()) it->second.mh_here = true;
}

void ArAgent::on_mh_detached(MhId mh) { attached_.erase(mh); }

}  // namespace fhmip
