#include "fastho/messages.hpp"

namespace fhmip {}
