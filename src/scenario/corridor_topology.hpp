#pragma once

#include <memory>
#include <vector>

#include "fastho/ar_agent.hpp"
#include "fastho/mh_agent.hpp"
#include "mip/map_agent.hpp"
#include "net/network.hpp"
#include "wireless/wlan.hpp"

namespace fhmip {

/// A corridor of N access routers under one MAP — the generalization of
/// Figure 4.1 to a whole roaming path:
///
///   CN --- GW --- MAP --+--- AR1 ((AP))   ((AP)) AR2 ... ((AP)) ARn
///                       |     |             |
///                       +-----+-- ... ------+      (star to the MAP,
///   AR_i --- AR_{i+1} direct links for the tunnels)
///
/// A mobile host walking the corridor hands over N-1 times, with every
/// interior router acting first as NAR, then as PAR.
struct CorridorConfig {
  std::uint64_t seed = 1;
  int num_ars = 4;
  double ap_spacing_m = 212;
  double ap_radius_m = 112;
  double speed_mps = 10;
  SimTime mobility_start = SimTime::millis(100);
  double cn_gw_mbps = 100, gw_map_mbps = 100, map_ar_mbps = 10,
         ar_ar_mbps = 10;
  SimTime cn_gw_delay = SimTime::millis(5);
  SimTime gw_map_delay = SimTime::millis(2);
  SimTime map_ar_delay = SimTime::millis(2);
  SimTime ar_ar_delay = SimTime::millis(2);
  std::size_t queue_limit = 200;
  WlanConfig wlan;
  BufferSchemeConfig scheme;
  bool use_fast_handover = true;
  bool request_buffers = true;
  /// Control-plane retransmission/backoff for the MH and every AR.
  RetransmitPolicy rtx;
};

class CorridorTopology {
 public:
  explicit CorridorTopology(const CorridorConfig& cfg);

  void start();
  /// Time to walk the full corridor.
  SimTime walk_duration() const;

  Simulation& simulation() { return sim_; }
  Network& network() { return *net_; }
  Node& cn() { return *cn_; }
  Node& map_router() { return *map_; }
  MapAgent& map_agent() { return *map_agent_; }
  std::size_t num_ars() const { return ars_.size(); }
  Node& ar(std::size_t i) { return *ars_.at(i); }
  ArAgent& ar_agent(std::size_t i) { return *ar_agents_.at(i); }
  WlanManager& wlan() { return *wlan_; }
  Node& mh() { return *mh_; }
  MhAgent& mh_agent() { return *mh_agent_; }
  MobileIpClient& mip() { return *mip_; }
  Address mh_regional() const { return regional_; }
  /// Per-attempt inter-AR handover outcomes along the corridor.
  HandoverOutcomeRecorder& outcomes() { return outcomes_; }

 private:
  CorridorConfig cfg_;
  Simulation sim_;
  std::unique_ptr<Network> net_;
  Node* cn_ = nullptr;
  Node* gw_ = nullptr;
  Node* map_ = nullptr;
  std::vector<Node*> ars_;
  Node* mh_ = nullptr;
  std::unique_ptr<MapAgent> map_agent_;
  std::vector<std::unique_ptr<ArAgent>> ar_agents_;
  std::unique_ptr<WlanManager> wlan_;
  std::unique_ptr<MobileIpClient> mip_;
  HandoverOutcomeRecorder outcomes_;
  std::unique_ptr<MhAgent> mh_agent_;
  Address regional_;
};

}  // namespace fhmip
