#pragma once

#include <memory>

#include "buffer/traffic_class.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"
#include "wireless/mobility.hpp"

namespace fhmip {

/// Axis-aligned rectangle the population roams inside (the city footprint,
/// derived from the AP layout by CityTopology).
struct RoamBox {
  Vec2 lo;
  Vec2 hi;
};

/// Population model for city-scale scenarios: per-MH random-waypoint walks
/// plus a traffic mix drawn from the three service classes of Table 3.1.
/// Everything is derived deterministically from one seed — two populations
/// built with the same config and seed are identical host by host.
struct PopulationConfig {
  int num_mhs = 100;
  /// Per-MH walk speed, uniform in [speed_min_mps, speed_max_mps].
  double speed_min_mps = 2;
  double speed_max_mps = 15;
  /// Hosts stand still until this sim time (lets initial association and
  /// binding updates settle before the first handovers).
  SimTime mobility_start = SimTime::millis(100);
  /// Walks are pre-generated to cover exactly this much sim time (the
  /// final leg is clipped); at the horizon every host freezes in place, so
  /// scenarios quiesce a bounded slack later.
  SimTime horizon = SimTime::seconds(60);
  /// Traffic mix: relative weights of the three service classes for the
  /// per-MH downstream flow (normalized internally).
  double mix_realtime = 0.25;
  double mix_highprio = 0.25;
  double mix_besteffort = 0.5;
  /// Fraction of hosts that carry a flow at all; the rest only roam.
  double active_fraction = 1.0;
  /// Per-flow downstream rate and packet size (interval is derived).
  double flow_kbps = 16;
  std::uint32_t packet_bytes = 160;
  SimTime traffic_start = SimTime::seconds(1);
  /// Zero = horizon.
  SimTime traffic_stop;
};

/// Traffic role one population member was dealt.
struct PopulationDraw {
  Vec2 spawn;
  double speed_mps = 0;
  bool active = false;
  TrafficClass tclass = TrafficClass::kBestEffort;
};

/// Per-MH deterministic draws for spawn point, speed, activity and service
/// class. Draw order is fixed (spawn, speed, active, class), so adding
/// fields later keeps existing streams stable per position.
PopulationDraw draw_member(Rng& rng, const PopulationConfig& cfg,
                           const RoamBox& box);

/// A random-waypoint walk inside `box`: waypoints uniform in the box, one
/// constant speed per host, segments generated until `cfg.horizon` is
/// covered. Implemented on WaypointMobility so position sampling is shared
/// with the scripted scenarios.
std::unique_ptr<MobilityModel> make_random_waypoint_walk(
    Rng& rng, const PopulationConfig& cfg, const RoamBox& box, Vec2 spawn,
    double speed_mps);

/// Derived CBR packet interval for the configured flow rate.
SimTime population_packet_interval(const PopulationConfig& cfg);

}  // namespace fhmip
