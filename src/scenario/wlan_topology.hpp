#pragma once

#include <memory>

#include "fastho/ar_agent.hpp"
#include "fastho/mh_agent.hpp"
#include "net/network.hpp"
#include "wireless/wlan.hpp"

namespace fhmip {

/// Figure 4.11 — the simple WLAN network for the pure link-layer handoff
/// experiments: CN --- router --- AR with two access points under it; the
/// MH switches APs without changing subnet (§3.2.2.4).
struct WlanTopologyConfig {
  std::uint64_t seed = 1;
  double cn_r_mbps = 100, r_ar_mbps = 10;
  SimTime cn_r_delay = SimTime::millis(5);
  SimTime r_ar_delay = SimTime::millis(2);
  std::size_t queue_limit = 200;
  WlanConfig wlan;
  BufferSchemeConfig scheme;
  bool use_fast_handover = true;
  bool request_buffers = true;
  /// Control-plane retransmission/backoff for the MH and the AR.
  RetransmitPolicy rtx;
};

class WlanTopology {
 public:
  explicit WlanTopology(const WlanTopologyConfig& cfg);

  void start();
  /// Schedules an AP1→AP2 link-layer handoff at `at` (and back if `at2`).
  void schedule_handoff(SimTime at);

  Simulation& simulation() { return sim_; }
  Node& cn() { return *cn_; }
  Node& ar() { return *ar_; }
  Node& mh() { return *mh_; }
  ArAgent& ar_agent() { return *ar_agent_; }
  MhAgent& mh_agent() { return *mh_agent_; }
  WlanManager& wlan() { return *wlan_; }
  Address mh_coa() const;
  AccessPoint& ap1() { return *ap1_; }
  AccessPoint& ap2() { return *ap2_; }

 private:
  WlanTopologyConfig cfg_;
  Simulation sim_;
  std::unique_ptr<Network> net_;
  Node* cn_ = nullptr;
  Node* r_ = nullptr;
  Node* ar_ = nullptr;
  Node* mh_ = nullptr;
  std::unique_ptr<ArAgent> ar_agent_;
  std::unique_ptr<MhAgent> mh_agent_;
  std::unique_ptr<WlanManager> wlan_;
  AccessPoint* ap1_ = nullptr;
  AccessPoint* ap2_ = nullptr;
};

}  // namespace fhmip
