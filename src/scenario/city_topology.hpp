#pragma once

#include <memory>
#include <vector>

#include "fastho/ar_agent.hpp"
#include "fastho/mh_agent.hpp"
#include "mip/map_agent.hpp"
#include "net/network.hpp"
#include "scenario/population.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"
#include "wireless/wlan.hpp"

namespace fhmip {

/// City-scale generalization of the Figure 4.1 hierarchy: a grid or hex
/// field of access routers (one AP each) under one or more MAPs, with a
/// whole population of mobile hosts roaming it at once.
///
///   CN --- GW --+--- MAP0 --+-- AR(0,0) ((AP))   ((AP)) AR(0,1) ...
///               |           +-- AR(1,0) ((AP))   ...
///               +--- MAP1 --+-- ...        (column bands of ARs per MAP;
///   adjacent ARs also get direct links carrying the handover tunnels)
///
/// Geometry, link rates and the population model are all parameterized so
/// one configuration drives anything from a paper-scale sanity run to
/// thousands of concurrent handovers across hundreds of ARs.
struct CityConfig {
  std::uint64_t seed = 1;

  /// AP field layout: square grid, or hexagonal packing (odd rows shifted
  /// by spacing/2, row pitch spacing*sqrt(3)/2 — denser vertical cover).
  enum class Layout { kGrid, kHex };
  Layout layout = Layout::kGrid;
  int ar_rows = 4;
  int ar_cols = 4;
  /// MAPs partition the AR field into contiguous column bands; each MH
  /// anchors (RCoA) at the MAP owning its spawn area and keeps that anchor
  /// while roaming the whole city.
  int num_maps = 1;

  double ap_spacing_m = 212;
  double ap_radius_m = 112;

  // Wired link rates. City backhaul defaults are a notch above the paper's
  // single-cell numbers so hundreds of concurrent flows don't serialize on
  // one 10 Mb/s spoke.
  double cn_gw_mbps = 1000, gw_map_mbps = 1000, map_ar_mbps = 100,
         ar_ar_mbps = 100;
  SimTime cn_gw_delay = SimTime::millis(5);
  SimTime gw_map_delay = SimTime::millis(2);
  SimTime map_ar_delay = SimTime::millis(2);
  SimTime ar_ar_delay = SimTime::millis(2);
  std::size_t queue_limit = 500;

  /// City default turns handoff hysteresis on: a population freezing at
  /// the walk horizon otherwise strands hosts in overlapping exit margins,
  /// where they flap between two APs (and re-run the buffer handshake)
  /// forever.
  CityConfig() { wlan.handoff_hysteresis_m = 4.0; }

  WlanConfig wlan;
  BufferSchemeConfig scheme;
  RetransmitPolicy rtx;
  /// Per-attempt liveness deadline for every MH (zero = disabled); city
  /// runs should set it so a wedged host becomes a typed failure, not a
  /// hang (see MhAgent::Config::watchdog).
  SimTime watchdog;

  PopulationConfig population;
};

class CityTopology {
 public:
  explicit CityTopology(const CityConfig& cfg);

  struct Mobile {
    Node* node = nullptr;
    Address regional;  // anchored at the MAP of the spawn area
    std::unique_ptr<MobileIpClient> mip;
    std::unique_ptr<MhAgent> agent;
    PopulationDraw draw;
    FlowId flow = 0;  // 0 when the host carries no traffic
  };

  /// Starts the WLAN layer; traffic sources are armed at construction and
  /// fire on their own schedule.
  void start();

  Simulation& simulation() { return sim_; }
  Network& network() { return *net_; }
  Node& cn() { return *cn_; }
  std::size_t num_maps() const { return maps_.size(); }
  Node& map_router(std::size_t k) { return *maps_.at(k); }
  MapAgent& map_agent(std::size_t k) { return *map_agents_.at(k); }
  std::size_t num_ars() const { return ars_.size(); }
  Node& ar(std::size_t i) { return *ars_.at(i); }
  ArAgent& ar_agent(std::size_t i) { return *ar_agents_.at(i); }
  /// MAP band index of AR `i`.
  std::size_t map_of_ar(std::size_t i) const;
  WlanManager& wlan() { return *wlan_; }
  Mobile& mobile(std::size_t i) { return mobiles_.at(i); }
  std::size_t num_mobiles() const { return mobiles_.size(); }
  HandoverOutcomeRecorder& outcomes() { return outcomes_; }
  const CityConfig& config() const { return cfg_; }
  /// The city footprint the population roams (AP field plus one radius of
  /// margin).
  RoamBox roam_box() const { return box_; }
  /// Direct inter-AR links (handover tunnel paths) for fault harnesses.
  const std::vector<DuplexLink*>& ar_ar_links() const { return ar_links_; }
  /// Buffer slots still leased across every AR (0 after quiesce = no leaks).
  std::uint64_t leased_total() const;

  /// AP center position of AR `i` for the configured layout (static helper
  /// so tests can reason about the geometry without building a topology).
  static Vec2 ap_position(const CityConfig& cfg, int row, int col);

 private:
  CityConfig cfg_;
  Simulation sim_;
  std::unique_ptr<Network> net_;
  Node* cn_ = nullptr;
  Node* gw_ = nullptr;
  std::vector<Node*> maps_;
  std::vector<Node*> ars_;
  std::vector<std::unique_ptr<MapAgent>> map_agents_;
  std::vector<std::unique_ptr<ArAgent>> ar_agents_;
  std::vector<DuplexLink*> ar_links_;
  std::unique_ptr<WlanManager> wlan_;
  HandoverOutcomeRecorder outcomes_;
  RoamBox box_;
  std::vector<Mobile> mobiles_;
  std::vector<std::unique_ptr<UdpSink>> sinks_;
  std::vector<std::unique_ptr<CbrSource>> sources_;
};

}  // namespace fhmip
