#include "scenario/wlan_topology.hpp"

#include "scenario/paper_topology.hpp"  // nets::

namespace fhmip {

WlanTopology::WlanTopology(const WlanTopologyConfig& cfg)
    : cfg_(cfg), sim_(cfg.seed) {
  net_ = std::make_unique<Network>(sim_);
  cn_ = &net_->add_node("cn");
  r_ = &net_->add_node("r");
  ar_ = &net_->add_node("ar");
  mh_ = &net_->add_node("mh");

  cn_->add_address({nets::kCn, 1});
  r_->add_address({nets::kGw, 1});
  ar_->add_address({nets::kPar, 1});

  net_->connect(*cn_, *r_, cfg.cn_r_mbps * 1e6, cfg.cn_r_delay,
                cfg.queue_limit);
  net_->connect(*r_, *ar_, cfg.r_ar_mbps * 1e6, cfg.r_ar_delay,
                cfg.queue_limit);
  net_->compute_routes();

  ar_agent_ = std::make_unique<ArAgent>(*ar_, cfg.scheme, cfg.rtx);

  wlan_ = std::make_unique<WlanManager>(sim_, cfg.wlan);
  // Both APs under the same AR; the MH sits where both cover it so the
  // handoffs are purely protocol-driven (force_handoff).
  ap1_ = &wlan_->add_ap(*ar_, Vec2{0, 0}, 120, ar_agent_.get());
  ap2_ = &wlan_->add_ap(*ar_, Vec2{60, 0}, 120, ar_agent_.get());

  auto resolver = [this](NodeId ap) -> Node* {
    AccessPoint* a = wlan_->ap(ap);
    return a == nullptr ? nullptr : &a->ar_node();
  };
  ar_agent_->set_ap_resolver(resolver);

  MhAgent::Config mh_cfg;
  mh_cfg.scheme = cfg.scheme;
  mh_cfg.use_fast_handover = cfg.use_fast_handover;
  mh_cfg.request_buffers = cfg.request_buffers;
  mh_cfg.rtx = cfg.rtx;

  mh_->add_address(mh_coa(), /*advertised=*/false);
  mh_agent_ = std::make_unique<MhAgent>(*mh_, mh_cfg, /*mip=*/nullptr);
  wlan_->add_mh(*mh_, std::make_unique<StaticPosition>(Vec2{10, 0}),
                mh_agent_.get());
}

Address WlanTopology::mh_coa() const {
  return make_coa(nets::kPar, mh_->id());
}

void WlanTopology::start() { wlan_->start(); }

void WlanTopology::schedule_handoff(SimTime at) {
  // The anticipation trigger (L2-ST fires at start because both APs cover
  // the MH) has already primed the RtSolPr+BI exchange; force the switch.
  // The target AP is resolved at fire time so repeated calls alternate.
  // sim_ is a member of *this: pending events die (unrun) with the topology,
  // so the this-capture cannot dangle.
  sim_.at(at, [this] {  // NOLINT-FHMIP(LIFE-01)
    const NodeId cur = wlan_->attached_ap(mh_->id());
    const NodeId target = cur == ap1_->id() ? ap2_->id() : ap1_->id();
    wlan_->force_handoff(mh_->id(), target, sim_.now());
  });
}

}  // namespace fhmip
