#pragma once

#include <memory>
#include <vector>

#include "fastho/ar_agent.hpp"
#include "fastho/mh_agent.hpp"
#include "mip/map_agent.hpp"
#include "net/network.hpp"
#include "transport/cbr.hpp"
#include "transport/sink.hpp"
#include "wireless/wlan.hpp"

namespace fhmip {

/// Well-known address nets used by the paper topologies.
namespace nets {
inline constexpr std::uint32_t kCn = 10;
inline constexpr std::uint32_t kGw = 20;
inline constexpr std::uint32_t kMap = 30;  // regional (RCoA) prefix
inline constexpr std::uint32_t kPar = 40;
inline constexpr std::uint32_t kNar = 50;
}  // namespace nets

/// Figure 4.1 — the hierarchical MIPv6 reference network:
///
///   CN --- GW --- MAP --+--- PAR ((AP))      MH -> moves PAR-side to
///                        \--- NAR ((AP))            NAR-side (212 m apart)
///                  PAR --- NAR (direct link, delay varied in Figs 4.9/4.10)
struct PaperTopologyConfig {
  std::uint64_t seed = 1;

  // Wired links (bandwidth Mb/s and delay as drawn beside Fig 4.1's links;
  // the scanned figure is unreadable, values chosen to be conventional).
  double cn_gw_mbps = 100, gw_map_mbps = 100, map_ar_mbps = 10,
         par_nar_mbps = 10;
  SimTime cn_gw_delay = SimTime::millis(5);
  SimTime gw_map_delay = SimTime::millis(2);
  SimTime map_ar_delay = SimTime::millis(2);
  SimTime par_nar_delay = SimTime::millis(2);
  std::size_t queue_limit = 200;

  // Geometry and motion (§4.1): ARs 212 m apart, ~112 m coverage
  // (12 m overlap), 10 m/s.
  double ar_distance_m = 212;
  double ap_radius_m = 112;
  double speed_mps = 10;
  bool bounce = false;  // false: one PAR→NAR pass; true: back-and-forth
  SimTime mobility_start = SimTime::millis(100);

  WlanConfig wlan;  // 200 ms L2 handoff, 1 s router advertisements
  BufferSchemeConfig scheme;
  int num_mhs = 1;
  /// MH-side knobs (BI piggybacking, start-time safety valve, the
  /// non-anticipated path, the §3.1.1 bicast baseline).
  bool use_fast_handover = true;
  bool request_buffers = true;
  bool anticipate = true;
  bool simultaneous_binding = false;
  std::uint64_t auth_key = 0;
  SimTime start_time_offset;
  /// Per-attempt handover liveness deadline for every MH agent (zero =
  /// disabled; see MhAgent::Config::watchdog).
  SimTime watchdog;
  /// Control-plane retransmission/backoff, shared by the MH agents and both
  /// ARs (rtx.enabled = false restores fire-and-forget signaling).
  RetransmitPolicy rtx;
};

class PaperTopology {
 public:
  explicit PaperTopology(const PaperTopologyConfig& cfg);

  struct Mobile {
    Node* node = nullptr;
    Address regional;  // the address correspondents use
    std::unique_ptr<MobileIpClient> mip;
    std::unique_ptr<MhAgent> agent;
  };

  /// Starts the WLAN layer (initial association + binding updates).
  void start();

  /// Duration of one PAR→NAR leg for the configured geometry.
  SimTime leg_duration() const;

  Simulation& simulation() { return sim_; }
  Network& network() { return *net_; }
  Node& cn() { return *cn_; }
  Node& par() { return *par_; }
  Node& nar() { return *nar_; }
  Node& map_router() { return *map_; }
  MapAgent& map_agent() { return *map_agent_; }
  ArAgent& par_agent() { return *par_agent_; }
  ArAgent& nar_agent() { return *nar_agent_; }
  WlanManager& wlan() { return *wlan_; }
  /// The direct inter-AR link carrying the handover tunnel.
  DuplexLink& par_nar_link() { return *par_nar_link_; }
  AccessPoint& ap_par() { return *ap_par_; }
  AccessPoint& ap_nar() { return *ap_nar_; }
  Mobile& mobile(std::size_t i) { return mobiles_.at(i); }
  std::size_t num_mobiles() const { return mobiles_.size(); }
  const PaperTopologyConfig& config() const { return cfg_; }
  /// Per-attempt inter-AR handover outcomes across all mobiles.
  HandoverOutcomeRecorder& outcomes() { return outcomes_; }

 private:
  PaperTopologyConfig cfg_;
  Simulation sim_;
  std::unique_ptr<Network> net_;
  Node* cn_ = nullptr;
  Node* gw_ = nullptr;
  Node* map_ = nullptr;
  Node* par_ = nullptr;
  Node* nar_ = nullptr;
  std::unique_ptr<MapAgent> map_agent_;
  std::unique_ptr<ArAgent> par_agent_;
  std::unique_ptr<ArAgent> nar_agent_;
  std::unique_ptr<WlanManager> wlan_;
  DuplexLink* par_nar_link_ = nullptr;
  AccessPoint* ap_par_ = nullptr;
  AccessPoint* ap_nar_ = nullptr;
  HandoverOutcomeRecorder outcomes_;
  std::vector<Mobile> mobiles_;
};

}  // namespace fhmip
