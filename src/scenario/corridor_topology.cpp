#include "scenario/corridor_topology.hpp"

#include "scenario/paper_topology.hpp"  // nets::

namespace fhmip {

CorridorTopology::CorridorTopology(const CorridorConfig& cfg)
    : cfg_(cfg), sim_(cfg.seed) {
  net_ = std::make_unique<Network>(sim_);
  cn_ = &net_->add_node("cn");
  gw_ = &net_->add_node("gw");
  map_ = &net_->add_node("map");
  cn_->add_address({nets::kCn, 1});
  gw_->add_address({nets::kGw, 1});
  map_->add_address({nets::kMap, 1});
  net_->connect(*cn_, *gw_, cfg.cn_gw_mbps * 1e6, cfg.cn_gw_delay,
                cfg.queue_limit);
  net_->connect(*gw_, *map_, cfg.gw_map_mbps * 1e6, cfg.gw_map_delay,
                cfg.queue_limit);

  for (int i = 0; i < cfg.num_ars; ++i) {
    Node& ar = net_->add_node("ar" + std::to_string(i + 1));
    ar.add_address({nets::kPar + static_cast<std::uint32_t>(i) * 10, 1});
    net_->connect(*map_, ar, cfg.map_ar_mbps * 1e6, cfg.map_ar_delay,
                  cfg.queue_limit);
    if (i > 0) {
      net_->connect(*ars_.back(), ar, cfg.ar_ar_mbps * 1e6, cfg.ar_ar_delay,
                    cfg.queue_limit);
    }
    ars_.push_back(&ar);
  }
  mh_ = &net_->add_node("mh");
  net_->compute_routes();

  map_agent_ = std::make_unique<MapAgent>(*map_);
  for (Node* ar : ars_) {
    ar_agents_.push_back(std::make_unique<ArAgent>(*ar, cfg.scheme, cfg.rtx));
  }

  wlan_ = std::make_unique<WlanManager>(sim_, cfg.wlan);
  for (std::size_t i = 0; i < ars_.size(); ++i) {
    wlan_->add_ap(*ars_[i],
                  Vec2{cfg.ap_spacing_m * static_cast<double>(i), 0},
                  cfg.ap_radius_m, ar_agents_[i].get());
  }
  auto resolver = [this](NodeId ap) -> Node* {
    AccessPoint* a = wlan_->ap(ap);
    return a == nullptr ? nullptr : &a->ar_node();
  };
  for (auto& agent : ar_agents_) agent->set_ap_resolver(resolver);

  regional_ = Address{nets::kMap, mh_->id()};
  mh_->add_address(regional_, /*advertised=*/false);
  mip_ = std::make_unique<MobileIpClient>(*mh_, regional_, map_->address());
  MhAgent::Config mh_cfg;
  mh_cfg.scheme = cfg.scheme;
  mh_cfg.use_fast_handover = cfg.use_fast_handover;
  mh_cfg.request_buffers = cfg.request_buffers;
  mh_cfg.rtx = cfg.rtx;
  mh_cfg.outcomes = &outcomes_;
  mh_agent_ = std::make_unique<MhAgent>(*mh_, mh_cfg, mip_.get());
  const double length = cfg.ap_spacing_m * (cfg.num_ars - 1);
  wlan_->add_mh(*mh_,
                std::make_unique<LinearMobility>(
                    Vec2{0, 0}, Vec2{cfg.speed_mps, 0}, cfg.mobility_start),
                mh_agent_.get());
  (void)length;
}

void CorridorTopology::start() { wlan_->start(); }

SimTime CorridorTopology::walk_duration() const {
  return SimTime::from_seconds(cfg_.ap_spacing_m * (cfg_.num_ars - 1) /
                               cfg_.speed_mps);
}

}  // namespace fhmip
