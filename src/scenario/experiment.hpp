#pragma once

#include <vector>

#include "scenario/paper_topology.hpp"
#include "scenario/wlan_topology.hpp"
#include "stats/recorder.hpp"
#include "transport/tcp.hpp"

namespace fhmip {

/// One downstream audio flow from the CN toward a mobile host.
struct FlowSpec {
  FlowId id = 0;
  TrafficClass tclass = TrafficClass::kUnspecified;
  double kbps = 64;
  std::uint32_t packet_bytes = 160;
};

/// Per-flow outcome of a handoff experiment.
struct FlowOutcome {
  FlowId id = 0;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::vector<DeliverySample> samples;  // only when keep_samples
};

// ---------------------------------------------------------------------------
// Figure 4.2 — buffer utilization: N mobile hosts handing off at once.
// ---------------------------------------------------------------------------

struct SimultaneousHandoffParams {
  BufferMode mode = BufferMode::kDual;
  bool classify = false;  // the Fig 4.2 workload is a single unmarked flow
  int num_mhs = 1;
  std::uint32_t pool_pkts = 35;
  std::uint32_t request_pkts = 10;
  double flow_kbps = 64;
  std::uint32_t packet_bytes = 160;
  std::uint64_t seed = 1;
};

struct SimultaneousHandoffResult {
  std::uint64_t total_sent = 0;
  std::uint64_t total_delivered = 0;
  std::uint64_t total_dropped = 0;
  std::uint32_t handoffs = 0;
};

SimultaneousHandoffResult run_simultaneous_handoffs(
    const SimultaneousHandoffParams& p);

// ---------------------------------------------------------------------------
// Figures 4.3–4.5 — per-class cumulative drops over repeated handoffs.
// ---------------------------------------------------------------------------

struct QosDropParams {
  BufferMode mode = BufferMode::kDual;
  bool classify = true;
  std::uint32_t pool_pkts = 20;   // per AR ("Buffer=20"); FH run uses 40
  std::uint32_t request_pkts = 20;
  std::uint32_t reserve_a = 5;    // Case 1.c/3.c headroom constant
  int handoffs = 100;
  double flow_kbps = 128;  // three flows, F1 RT / F2 HP / F3 BE
  std::uint32_t packet_bytes = 160;
  std::uint64_t seed = 1;
};

struct QosDropResult {
  /// Cumulative dropped packets per flow, indexed by handoff count;
  /// series are named F1/F2/F3 as in the figures.
  std::vector<Series> per_flow_drops;
  std::vector<FlowOutcome> flows;
};

/// When `metrics_json` is non-null it receives the run's metrics-registry
/// export (obs::MetricsRegistry::to_json()); same for the other runners.
QosDropResult run_qos_drop_experiment(const QosDropParams& p,
                                      std::string* metrics_json = nullptr);

// ---------------------------------------------------------------------------
// Figure 4.6 — per-class drops in one handoff vs. data rate.
// ---------------------------------------------------------------------------

/// Runs one handoff at the given per-flow rate; returns drops per flow
/// (F1, F2, F3). When `metrics_json` is non-null it receives the run's
/// metrics-registry export (obs::MetricsRegistry::to_json()).
std::vector<FlowOutcome> run_rate_probe(const QosDropParams& base,
                                        double flow_kbps,
                                        std::string* metrics_json = nullptr);

// ---------------------------------------------------------------------------
// Figures 4.7–4.10 — per-packet end-to-end delay around one handoff.
// ---------------------------------------------------------------------------

struct DelayCaptureParams {
  BufferMode mode = BufferMode::kDual;
  bool classify = true;
  std::uint32_t pool_pkts = 20;
  std::uint32_t request_pkts = 20;
  SimTime par_nar_delay = SimTime::millis(2);
  SimTime drain_gap = SimTime::micros(200);  // buffer-release pacing
  double flow_kbps = 128;  // 160 B / 10 ms
  std::uint32_t packet_bytes = 160;
  std::uint64_t seed = 1;
};

struct DelayCaptureResult {
  std::vector<FlowOutcome> flows;  // samples filled
  /// Sequence-number window covering the handoff disturbance.
  std::uint32_t seq_begin = 0;
  std::uint32_t seq_end = 0;
};

DelayCaptureResult run_delay_capture(const DelayCaptureParams& p,
                                     std::string* metrics_json = nullptr);

/// Extracts delay-vs-sequence series (one per flow) limited to the window.
std::vector<Series> delay_series(const DelayCaptureResult& r);

// ---------------------------------------------------------------------------
// Figures 4.12–4.14 — TCP across a pure link-layer handoff.
// ---------------------------------------------------------------------------

struct TcpHandoffParams {
  bool buffering = true;  // proposed method vs. plain (lossy) L2 handoff
  SimTime handoff_at = SimTime::from_millis(11470);  // §4.2.4: 11.47 s
  SimTime run_until = SimTime::seconds(16);
  std::uint32_t mss = 1000;
  std::uint32_t pool_pkts = 60;
  std::uint64_t seed = 1;
};

struct TcpHandoffResult {
  std::vector<TcpSender::TracePoint> send_trace;
  std::vector<TcpSender::TracePoint> ack_trace;
  std::vector<TcpSender::TracePoint> recv_trace;
  std::uint64_t bytes_acked = 0;
  int timeouts = 0;
  int fast_retransmits = 0;
  std::uint32_t mss = 0;
};

TcpHandoffResult run_tcp_handoff(const TcpHandoffParams& p);

/// Throughput series (Mbit/s in 100 ms bins) from the receiver trace.
Series tcp_throughput_series(const TcpHandoffResult& r, const char* name,
                             double t_begin, double t_end);

/// The longest gap between consecutive receiver arrivals inside
/// [t_begin, t_end] — the "stall" the TCP figures visualize.
SimTime max_receiver_gap(const TcpHandoffResult& r, double t_begin,
                         double t_end);

}  // namespace fhmip
