#include "scenario/paper_topology.hpp"

namespace fhmip {

PaperTopology::PaperTopology(const PaperTopologyConfig& cfg)
    : cfg_(cfg), sim_(cfg.seed) {
  net_ = std::make_unique<Network>(sim_);
  cn_ = &net_->add_node("cn");
  gw_ = &net_->add_node("gw");
  map_ = &net_->add_node("map");
  par_ = &net_->add_node("par");
  nar_ = &net_->add_node("nar");

  cn_->add_address({nets::kCn, 1});
  gw_->add_address({nets::kGw, 1});
  map_->add_address({nets::kMap, 1});
  par_->add_address({nets::kPar, 1});
  nar_->add_address({nets::kNar, 1});

  net_->connect(*cn_, *gw_, cfg.cn_gw_mbps * 1e6, cfg.cn_gw_delay,
                cfg.queue_limit);
  net_->connect(*gw_, *map_, cfg.gw_map_mbps * 1e6, cfg.gw_map_delay,
                cfg.queue_limit);
  net_->connect(*map_, *par_, cfg.map_ar_mbps * 1e6, cfg.map_ar_delay,
                cfg.queue_limit);
  net_->connect(*map_, *nar_, cfg.map_ar_mbps * 1e6, cfg.map_ar_delay,
                cfg.queue_limit);
  DuplexLink& par_nar = net_->connect(*par_, *nar_, cfg.par_nar_mbps * 1e6,
                                      cfg.par_nar_delay, cfg.queue_limit);
  par_nar_link_ = &par_nar;

  // Mobile-host nodes exist before route computation (their addresses are
  // unadvertised, so routing never points at them directly).
  std::vector<Node*> mh_nodes;
  for (int i = 0; i < cfg.num_mhs; ++i) {
    mh_nodes.push_back(&net_->add_node("mh" + std::to_string(i)));
  }
  net_->compute_routes();

  // The handover tunnel always uses the direct inter-AR link (Figures
  // 4.9/4.10 vary exactly this link's delay); shortest-path routing would
  // otherwise detour via the MAP when the link is slow.
  par_->routes().set_prefix_route(nets::kNar, Route::via(par_nar.toward(*nar_)));
  nar_->routes().set_prefix_route(nets::kPar, Route::via(par_nar.toward(*par_)));

  map_agent_ = std::make_unique<MapAgent>(*map_);
  par_agent_ = std::make_unique<ArAgent>(*par_, cfg.scheme, cfg.rtx);
  nar_agent_ = std::make_unique<ArAgent>(*nar_, cfg.scheme, cfg.rtx);

  wlan_ = std::make_unique<WlanManager>(sim_, cfg.wlan);
  ap_par_ = &wlan_->add_ap(*par_, Vec2{0, 0}, cfg.ap_radius_m,
                           par_agent_.get());
  ap_nar_ = &wlan_->add_ap(*nar_, Vec2{cfg.ar_distance_m, 0},
                           cfg.ap_radius_m, nar_agent_.get());

  auto resolver = [this](NodeId ap) -> Node* {
    AccessPoint* a = wlan_->ap(ap);
    return a == nullptr ? nullptr : &a->ar_node();
  };
  par_agent_->set_ap_resolver(resolver);
  nar_agent_->set_ap_resolver(resolver);

  MhAgent::Config mh_cfg;
  mh_cfg.scheme = cfg.scheme;
  mh_cfg.use_fast_handover = cfg.use_fast_handover;
  mh_cfg.request_buffers = cfg.request_buffers;
  mh_cfg.anticipate = cfg.anticipate;
  mh_cfg.simultaneous_binding = cfg.simultaneous_binding;
  mh_cfg.auth_key = cfg.auth_key;
  mh_cfg.start_time_offset = cfg.start_time_offset;
  mh_cfg.watchdog = cfg.watchdog;
  mh_cfg.rtx = cfg.rtx;
  mh_cfg.outcomes = &outcomes_;

  for (int i = 0; i < cfg.num_mhs; ++i) {
    Mobile m;
    m.node = mh_nodes[i];
    m.regional = Address{nets::kMap, m.node->id()};
    m.node->add_address(m.regional, /*advertised=*/false);
    m.mip =
        std::make_unique<MobileIpClient>(*m.node, m.regional, map_->address());
    m.agent = std::make_unique<MhAgent>(*m.node, mh_cfg, m.mip.get());

    std::unique_ptr<MobilityModel> mob;
    const Vec2 a{0, 0};
    const Vec2 b{cfg.ar_distance_m, 0};
    if (cfg.bounce) {
      mob = std::make_unique<BounceMobility>(a, b, cfg.speed_mps,
                                             cfg.mobility_start);
    } else {
      mob = std::make_unique<LinearMobility>(a, Vec2{cfg.speed_mps, 0},
                                             cfg.mobility_start);
    }
    wlan_->add_mh(*m.node, std::move(mob), m.agent.get());
    mobiles_.push_back(std::move(m));
  }
}

void PaperTopology::start() { wlan_->start(); }

SimTime PaperTopology::leg_duration() const {
  return SimTime::from_seconds(cfg_.ar_distance_m / cfg_.speed_mps);
}

}  // namespace fhmip
