#include "scenario/population.hpp"

#include <algorithm>
#include <vector>

namespace fhmip {

PopulationDraw draw_member(Rng& rng, const PopulationConfig& cfg,
                           const RoamBox& box) {
  PopulationDraw d;
  d.spawn = Vec2{rng.uniform(box.lo.x, box.hi.x),
                 rng.uniform(box.lo.y, box.hi.y)};
  d.speed_mps = rng.uniform(cfg.speed_min_mps, cfg.speed_max_mps);
  d.active = rng.uniform() < cfg.active_fraction;
  const double wr = std::max(0.0, cfg.mix_realtime);
  const double wh = std::max(0.0, cfg.mix_highprio);
  const double wb = std::max(0.0, cfg.mix_besteffort);
  const double total = wr + wh + wb;
  // A degenerate all-zero mix falls through to best effort.
  const double u = total > 0 ? rng.uniform(0.0, total) : 0.0;
  if (total > 0 && u < wr) {
    d.tclass = TrafficClass::kRealTime;
  } else if (total > 0 && u < wr + wh) {
    d.tclass = TrafficClass::kHighPriority;
  } else {
    d.tclass = TrafficClass::kBestEffort;
  }
  return d;
}

std::unique_ptr<MobilityModel> make_random_waypoint_walk(
    Rng& rng, const PopulationConfig& cfg, const RoamBox& box, Vec2 spawn,
    double speed_mps) {
  std::vector<WaypointMobility::Leg> legs;
  Vec2 cur = spawn;
  SimTime covered;
  // Walking only begins at mobility_start, so the legs span the remainder
  // of the horizon.
  const SimTime span = cfg.horizon > cfg.mobility_start
                           ? cfg.horizon - cfg.mobility_start
                           : SimTime();
  while (covered < span) {
    Vec2 next{rng.uniform(box.lo.x, box.hi.x),
              rng.uniform(box.lo.y, box.hi.y)};
    double d = distance(cur, next);
    if (d <= 0 || speed_mps <= 0) break;
    // Clip the final leg at the horizon so the whole population freezes
    // there — scale harnesses quiesce a fixed slack after it, and a leg
    // running long past the horizon would keep triggering handovers (and
    // renewing buffer leases) indefinitely.
    const SimTime leg = SimTime::from_seconds(d / speed_mps);
    if (covered + leg > span) {
      const double frac = (span - covered).sec() / leg.sec();
      next = Vec2{cur.x + (next.x - cur.x) * frac,
                  cur.y + (next.y - cur.y) * frac};
      d *= frac;
    }
    legs.push_back({next, speed_mps});
    covered += SimTime::from_seconds(d / speed_mps);
    cur = next;
  }
  return std::make_unique<WaypointMobility>(spawn, std::move(legs),
                                            cfg.mobility_start);
}

SimTime population_packet_interval(const PopulationConfig& cfg) {
  const double kbps = std::max(0.1, cfg.flow_kbps);
  return SimTime::from_seconds(cfg.packet_bytes * 8.0 / (kbps * 1000.0));
}

}  // namespace fhmip
