#include "scenario/experiment.hpp"

#include <algorithm>
#include <memory>

namespace fhmip {

namespace {

constexpr std::uint16_t kSinkPort = 7000;

struct FlowAttachment {
  std::unique_ptr<CbrSource> source;
  std::unique_ptr<UdpSink> sink;
};

/// Wires `flows` from the CN to mobile `mh_index`, one sink per flow port.
std::vector<FlowAttachment> attach_flows(PaperTopology& topo,
                                         std::size_t mh_index,
                                         const std::vector<FlowSpec>& flows,
                                         SimTime start, SimTime stop) {
  std::vector<FlowAttachment> out;
  auto& mobile = topo.mobile(mh_index);
  std::uint16_t port = kSinkPort;
  std::uint16_t src_port = 20000 + static_cast<std::uint16_t>(mh_index) * 16;
  for (const FlowSpec& f : flows) {
    FlowAttachment a;
    CbrSource::Config cfg;
    cfg.dst = mobile.regional;
    cfg.dst_port = port;
    cfg.packet_bytes = f.packet_bytes;
    cfg.interval = CbrSource::interval_for_rate(f.kbps, f.packet_bytes);
    cfg.tclass = f.tclass;
    cfg.flow = f.id;
    a.sink = std::make_unique<UdpSink>(*mobile.node, port);
    a.source = std::make_unique<CbrSource>(topo.cn(), src_port, cfg);
    a.source->start(start);
    a.source->stop(stop);
    out.push_back(std::move(a));
    ++port;
    ++src_port;
  }
  return out;
}

FlowOutcome outcome_for(const Simulation& sim, FlowId id, bool samples) {
  FlowOutcome o;
  o.id = id;
  const FlowCounters& c = sim.stats().flow(id);
  o.sent = c.sent;
  o.delivered = c.delivered;
  o.dropped = c.dropped;
  if (samples) o.samples = sim.stats().samples(id);
  return o;
}

std::vector<FlowSpec> three_class_flows(double kbps, std::uint32_t bytes) {
  return {
      {1, TrafficClass::kRealTime, kbps, bytes},      // F1
      {2, TrafficClass::kHighPriority, kbps, bytes},  // F2
      {3, TrafficClass::kBestEffort, kbps, bytes},    // F3
  };
}

}  // namespace

// ---------------------------------------------------------------------------
// Figure 4.2
// ---------------------------------------------------------------------------

SimultaneousHandoffResult run_simultaneous_handoffs(
    const SimultaneousHandoffParams& p) {
  PaperTopologyConfig cfg;
  cfg.seed = p.seed;
  cfg.num_mhs = p.num_mhs;
  cfg.scheme.mode = p.mode;
  cfg.scheme.classify = p.classify;
  cfg.scheme.pool_pkts = p.pool_pkts;
  cfg.scheme.request_pkts = p.request_pkts;
  PaperTopology topo(cfg);
  topo.simulation().stats().set_keep_samples(false);

  std::vector<std::vector<FlowAttachment>> all;
  for (int i = 0; i < p.num_mhs; ++i) {
    std::vector<FlowSpec> flows{{static_cast<FlowId>(i + 1),
                                 TrafficClass::kUnspecified, p.flow_kbps,
                                 p.packet_bytes}};
    all.push_back(attach_flows(topo, i, flows, SimTime::seconds(2),
                               SimTime::seconds(16)));
  }
  topo.start();
  topo.simulation().run_until(SimTime::seconds(20));

  SimultaneousHandoffResult r;
  const FlowCounters totals = topo.simulation().stats().totals();
  r.total_sent = totals.sent;
  r.total_delivered = totals.delivered;
  r.total_dropped = totals.dropped;
  r.handoffs = static_cast<std::uint32_t>(topo.wlan().handoffs_started());
  return r;
}

// ---------------------------------------------------------------------------
// Figures 4.3–4.5
// ---------------------------------------------------------------------------

QosDropResult run_qos_drop_experiment(const QosDropParams& p,
                                      std::string* metrics_json) {
  PaperTopologyConfig cfg;
  cfg.seed = p.seed;
  cfg.bounce = true;
  cfg.scheme.mode = p.mode;
  cfg.scheme.classify = p.classify;
  cfg.scheme.pool_pkts = p.pool_pkts;
  cfg.scheme.request_pkts = p.request_pkts;
  cfg.scheme.reserve_a = p.reserve_a;
  PaperTopology topo(cfg);

  auto flows = three_class_flows(p.flow_kbps, p.packet_bytes);
  const SimTime leg = topo.leg_duration();
  const SimTime t_end =
      cfg.mobility_start + leg * (p.handoffs + 1);
  auto attachments =
      attach_flows(topo, 0, flows, SimTime::seconds(2), t_end);
  topo.start();

  QosDropResult r;
  for (const FlowSpec& f : flows) {
    r.per_flow_drops.emplace_back("F" + std::to_string(f.id));
  }
  // One handoff per leg: sample cumulative per-flow drops after each leg.
  Simulation& sim = topo.simulation();
  for (int k = 1; k <= p.handoffs; ++k) {
    sim.run_until(cfg.mobility_start + leg * k);
    for (std::size_t i = 0; i < flows.size(); ++i) {
      r.per_flow_drops[i].add(
          k, static_cast<double>(sim.stats().flow(flows[i].id).dropped));
    }
  }
  sim.run_until(t_end + SimTime::seconds(2));
  for (const FlowSpec& f : flows) {
    r.flows.push_back(outcome_for(sim, f.id, /*samples=*/false));
  }
  if (metrics_json != nullptr) *metrics_json = sim.metrics().to_json();
  return r;
}

// ---------------------------------------------------------------------------
// Figure 4.6
// ---------------------------------------------------------------------------

std::vector<FlowOutcome> run_rate_probe(const QosDropParams& base,
                                        double flow_kbps,
                                        std::string* metrics_json) {
  PaperTopologyConfig cfg;
  cfg.seed = base.seed;
  cfg.scheme.mode = base.mode;
  cfg.scheme.classify = base.classify;
  cfg.scheme.pool_pkts = base.pool_pkts;
  cfg.scheme.request_pkts = base.request_pkts;
  cfg.scheme.reserve_a = base.reserve_a;
  PaperTopology topo(cfg);

  auto flows = three_class_flows(flow_kbps, base.packet_bytes);
  auto attachments = attach_flows(topo, 0, flows, SimTime::seconds(2),
                                  SimTime::seconds(16));
  topo.start();
  topo.simulation().run_until(SimTime::seconds(20));

  std::vector<FlowOutcome> out;
  for (const FlowSpec& f : flows) {
    out.push_back(outcome_for(topo.simulation(), f.id, /*samples=*/false));
  }
  if (metrics_json != nullptr) {
    *metrics_json = topo.simulation().metrics().to_json();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Figures 4.7–4.10
// ---------------------------------------------------------------------------

DelayCaptureResult run_delay_capture(const DelayCaptureParams& p,
                                     std::string* metrics_json) {
  PaperTopologyConfig cfg;
  cfg.seed = p.seed;
  cfg.par_nar_delay = p.par_nar_delay;
  cfg.scheme.mode = p.mode;
  cfg.scheme.classify = p.classify;
  cfg.scheme.pool_pkts = p.pool_pkts;
  cfg.scheme.request_pkts = p.request_pkts;
  cfg.scheme.drain_gap = p.drain_gap;
  PaperTopology topo(cfg);
  topo.simulation().stats().set_keep_samples(true);

  auto flows = three_class_flows(p.flow_kbps, p.packet_bytes);
  auto attachments = attach_flows(topo, 0, flows, SimTime::seconds(2),
                                  SimTime::seconds(18));
  topo.start();
  topo.simulation().run_until(SimTime::seconds(20));

  DelayCaptureResult r;
  for (const FlowSpec& f : flows) {
    r.flows.push_back(outcome_for(topo.simulation(), f.id, /*samples=*/true));
  }

  // Locate the handoff disturbance: the first sample whose delay exceeds
  // the baseline by 20 ms; the window covers the buffered burst.
  double base_delay = 1e9;
  for (const auto& f : r.flows) {
    for (const auto& s : f.samples) base_delay = std::min(base_delay, s.delay.sec());
  }
  std::uint32_t first = UINT32_MAX;
  for (const auto& f : r.flows) {
    for (const auto& s : f.samples) {
      if (s.delay.sec() > base_delay + 0.020) {
        first = std::min(first, s.seq);
        break;
      }
    }
  }
  if (first == UINT32_MAX) first = 3;
  r.seq_begin = first > 3 ? first - 3 : 0;
  r.seq_end = r.seq_begin + 30;
  if (metrics_json != nullptr) {
    *metrics_json = topo.simulation().metrics().to_json();
  }
  return r;
}

std::vector<Series> delay_series(const DelayCaptureResult& r) {
  std::vector<Series> out;
  for (const auto& f : r.flows) {
    Series s("Delay_F" + std::to_string(f.id));
    for (const auto& smp : f.samples) {
      if (smp.seq >= r.seq_begin && smp.seq <= r.seq_end) {
        s.add(smp.seq, smp.delay.sec());
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Figures 4.12–4.14
// ---------------------------------------------------------------------------

TcpHandoffResult run_tcp_handoff(const TcpHandoffParams& p) {
  WlanTopologyConfig cfg;
  cfg.seed = p.seed;
  cfg.scheme.pool_pkts = p.pool_pkts;
  cfg.scheme.request_pkts = p.pool_pkts;
  cfg.scheme.classify = false;
  cfg.scheme.lifetime = SimTime::seconds(30);  // covers trigger→handoff gap
  cfg.use_fast_handover = p.buffering;
  cfg.request_buffers = p.buffering;
  WlanTopology topo(cfg);

  TcpSink sink(topo.mh(), 8000);
  sink.set_ack_flow(2);
  TcpSender::Config tc;
  tc.dst = topo.mh_coa();
  tc.dst_port = 8000;
  tc.src_port = 8001;
  tc.mss = p.mss;
  tc.rwnd_pkts = 32;
  tc.flow = 1;
  tc.ack_flow = 2;
  TcpSender sender(topo.cn(), tc);

  topo.start();
  sender.start(SimTime::seconds(1));
  topo.schedule_handoff(p.handoff_at);
  topo.simulation().run_until(p.run_until);

  TcpHandoffResult r;
  r.send_trace = sender.send_trace();
  r.ack_trace = sender.ack_trace();
  r.recv_trace = sink.recv_trace();
  r.bytes_acked = sender.bytes_acked();
  r.timeouts = sender.timeouts();
  r.fast_retransmits = sender.fast_retransmits();
  r.mss = p.mss;
  return r;
}

Series tcp_throughput_series(const TcpHandoffResult& r, const char* name,
                             double t_begin, double t_end) {
  std::vector<std::pair<double, std::uint64_t>> arrivals;
  arrivals.reserve(r.recv_trace.size());
  for (const auto& pt : r.recv_trace) {
    arrivals.push_back({pt.at.sec(), r.mss});
  }
  return bin_throughput(name, arrivals, 0.1, t_begin, t_end);
}

SimTime max_receiver_gap(const TcpHandoffResult& r, double t_begin,
                         double t_end) {
  SimTime best;
  SimTime prev;
  bool have_prev = false;
  for (const auto& pt : r.recv_trace) {
    const double t = pt.at.sec();
    if (t < t_begin || t > t_end) continue;
    if (have_prev && pt.at - prev > best) best = pt.at - prev;
    prev = pt.at;
    have_prev = true;
  }
  return best;
}

}  // namespace fhmip
