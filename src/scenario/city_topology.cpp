#include "scenario/city_topology.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "scenario/paper_topology.hpp"  // nets::

namespace fhmip {
namespace {

// Address-net bases for the generated field; far above the hand-numbered
// paper nets (10..50 + corridor ARs at 40+10i) so the spaces never collide.
constexpr std::uint32_t kMapNetBase = 600;
constexpr std::uint32_t kArNetBase = 1000;

// Column band -> MAP index: MAPs split the columns into contiguous,
// near-equal bands.
std::size_t map_of_col(int c, int cols, int num_maps) {
  return static_cast<std::size_t>((c * num_maps) / cols);
}

}  // namespace

Vec2 CityTopology::ap_position(const CityConfig& cfg, int row, int col) {
  const double s = cfg.ap_spacing_m;
  if (cfg.layout == CityConfig::Layout::kHex) {
    const double xoff = (row % 2 == 1) ? s / 2 : 0.0;
    return Vec2{col * s + xoff, row * s * std::sqrt(3.0) / 2.0};
  }
  return Vec2{col * s, row * s};
}

CityTopology::CityTopology(const CityConfig& cfg)
    : cfg_(cfg), sim_(cfg.seed) {
  const int rows = std::max(1, cfg.ar_rows);
  const int cols = std::max(1, cfg.ar_cols);
  const int num_ars = rows * cols;
  const int num_maps = std::min(std::max(1, cfg.num_maps), cols);

  net_ = std::make_unique<Network>(sim_);
  cn_ = &net_->add_node("cn");
  gw_ = &net_->add_node("gw");
  cn_->add_address({nets::kCn, 1});
  gw_->add_address({nets::kGw, 1});
  net_->connect(*cn_, *gw_, cfg.cn_gw_mbps * 1e6, cfg.cn_gw_delay,
                cfg.queue_limit);

  for (int k = 0; k < num_maps; ++k) {
    Node& map = net_->add_node("map" + std::to_string(k));
    map.add_address({kMapNetBase + static_cast<std::uint32_t>(k), 1});
    net_->connect(*gw_, map, cfg.gw_map_mbps * 1e6, cfg.gw_map_delay,
                  cfg.queue_limit);
    maps_.push_back(&map);
  }

  // AR field in row-major order; each AR hangs off the MAP owning its
  // column band.
  std::vector<Vec2> ar_pos;
  ar_pos.reserve(num_ars);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int i = r * cols + c;
      Node& ar = net_->add_node("ar" + std::to_string(i));
      ar.add_address({kArNetBase + static_cast<std::uint32_t>(i), 1});
      const std::size_t band = map_of_col(c, cols, num_maps);
      net_->connect(*maps_[band], ar, cfg.map_ar_mbps * 1e6,
                    cfg.map_ar_delay, cfg.queue_limit);
      ars_.push_back(&ar);
      ar_pos.push_back(ap_position(cfg, r, c));
    }
  }

  // Direct links between geometrically adjacent ARs: east/south neighbours
  // on the grid, all six ring-1 neighbours in the hex packing (both sit at
  // exactly one spacing; the grid diagonal at sqrt(2) spacings stays out).
  // Dijkstra weights by delay with hop-count tiebreak, so the 1-hop direct
  // link always beats the 2-hop MAP detour for the handover tunnel.
  const double adjacency = cfg.ap_spacing_m * 1.05;
  for (int i = 0; i < num_ars; ++i) {
    for (int j = i + 1; j < num_ars; ++j) {
      if (distance(ar_pos[i], ar_pos[j]) > adjacency) continue;
      ar_links_.push_back(&net_->connect(*ars_[i], *ars_[j],
                                         cfg.ar_ar_mbps * 1e6,
                                         cfg.ar_ar_delay, cfg.queue_limit));
    }
  }

  // Mobile-host nodes exist before route computation (addresses are
  // unadvertised, so routing never points at them directly).
  std::vector<Node*> mh_nodes;
  mh_nodes.reserve(cfg.population.num_mhs);
  for (int i = 0; i < cfg.population.num_mhs; ++i) {
    mh_nodes.push_back(&net_->add_node("mh" + std::to_string(i)));
  }
  net_->compute_routes();

  for (std::size_t k = 0; k < maps_.size(); ++k) {
    map_agents_.push_back(std::make_unique<MapAgent>(*maps_[k]));
  }
  for (Node* ar : ars_) {
    ar_agents_.push_back(
        std::make_unique<ArAgent>(*ar, cfg.scheme, cfg.rtx));
  }

  wlan_ = std::make_unique<WlanManager>(sim_, cfg.wlan);
  for (int i = 0; i < num_ars; ++i) {
    wlan_->add_ap(*ars_[i], ar_pos[i], cfg.ap_radius_m,
                  ar_agents_[i].get());
  }
  auto resolver = [this](NodeId ap) -> Node* {
    AccessPoint* a = wlan_->ap(ap);
    return a == nullptr ? nullptr : &a->ar_node();
  };
  for (auto& agent : ar_agents_) agent->set_ap_resolver(resolver);

  // The roam box: the AP field plus one coverage radius of margin, so walks
  // can leave coverage at the fringe (hard-detach path) but always return.
  box_.lo = Vec2{-cfg.ap_radius_m, -cfg.ap_radius_m};
  box_.hi = Vec2{ar_pos.back().x + cfg.ap_radius_m,
                 ar_pos.back().y + cfg.ap_radius_m};
  for (const Vec2& p : ar_pos) {
    box_.hi.x = std::max(box_.hi.x, p.x + cfg.ap_radius_m);
    box_.hi.y = std::max(box_.hi.y, p.y + cfg.ap_radius_m);
  }

  MhAgent::Config mh_cfg;
  mh_cfg.scheme = cfg.scheme;
  mh_cfg.rtx = cfg.rtx;
  mh_cfg.watchdog = cfg.watchdog;
  mh_cfg.outcomes = &outcomes_;

  // The population stream is separate from the simulation RNG so scenario
  // generation never perturbs protocol-level draws (RA stagger, jitter).
  Rng pop_rng(cfg.seed ^ 0xC17Cu);
  const SimTime traffic_stop = cfg.population.traffic_stop.is_zero()
                                   ? cfg.population.horizon
                                   : cfg.population.traffic_stop;
  const SimTime interval = population_packet_interval(cfg.population);
  for (int i = 0; i < cfg.population.num_mhs; ++i) {
    Mobile m;
    m.node = mh_nodes[i];
    m.draw = draw_member(pop_rng, cfg.population, box_);

    // Anchor at the MAP whose band owns the nearest AR to the spawn point.
    std::size_t nearest = 0;
    double best = std::numeric_limits<double>::max();
    for (std::size_t a = 0; a < ar_pos.size(); ++a) {
      const double d = distance(ar_pos[a], m.draw.spawn);
      if (d < best) {
        best = d;
        nearest = a;
      }
    }
    const std::size_t band = map_of_ar(nearest);
    m.regional = Address{kMapNetBase + static_cast<std::uint32_t>(band),
                         m.node->id()};
    m.node->add_address(m.regional, /*advertised=*/false);
    m.mip = std::make_unique<MobileIpClient>(*m.node, m.regional,
                                             maps_[band]->address());
    m.agent = std::make_unique<MhAgent>(*m.node, mh_cfg, m.mip.get());
    wlan_->add_mh(*m.node,
                  make_random_waypoint_walk(pop_rng, cfg.population, box_,
                                            m.draw.spawn, m.draw.speed_mps),
                  m.agent.get());

    if (m.draw.active) {
      m.flow = static_cast<FlowId>(1 + i);
      sinks_.push_back(std::make_unique<UdpSink>(*m.node, 7000));
      CbrSource::Config c;
      c.dst = m.regional;
      c.dst_port = 7000;
      c.packet_bytes = cfg.population.packet_bytes;
      c.interval = interval;
      c.tclass = m.draw.tclass;
      c.flow = m.flow;
      sources_.push_back(std::make_unique<CbrSource>(*cn_, 5000, c));
      // Stagger start phases across one packet interval: every source
      // lives on the CN, and phase-locked CBR ticks would slam hundreds of
      // packets into the first wired queue in the same instant — burst
      // drops that say nothing about the buffer scheme under test.
      const SimTime phase = SimTime::nanos(
          interval.ns() * i / std::max(1, cfg.population.num_mhs));
      sources_.back()->start(cfg.population.traffic_start + phase);
      sources_.back()->stop(traffic_stop);
    }
    mobiles_.push_back(std::move(m));
  }
}

std::size_t CityTopology::map_of_ar(std::size_t i) const {
  const int cols = std::max(1, cfg_.ar_cols);
  return map_of_col(static_cast<int>(i) % cols, cols,
                    static_cast<int>(maps_.size()));
}

std::uint64_t CityTopology::leased_total() const {
  std::uint64_t total = 0;
  for (const auto& agent : ar_agents_) total += agent->buffers().leased();
  return total;
}

void CityTopology::start() { wlan_->start(); }

}  // namespace fhmip
